package core

import (
	"fmt"
	"strings"

	"repro/internal/cdg"
)

// RenderAllocation prints the PE allocation in the spirit of Figure 11:
// the column blocks with their PE ranges, each block's word/role/
// modifiee triple, the disabled self-arc segments, and the per-PE label
// submatrix size (Figure 13). For the paper's 3-word sentence this
// shows the 324-PE layout with PEs 0–107 supporting "the", 108–215
// "program", and 216–323 "runs".
func (ly *Layout) RenderAllocation(sp *cdg.Space) string {
	g := sp.Grammar()
	var b strings.Builder
	fmt.Fprintf(&b, "%d PEs total: S=%d column groups x S=%d row groups, %dx%d label submatrix per PE\n",
		ly.v, ly.s, ly.s, ly.l, ly.l)

	// Word-level ranges (Figure 11's top band).
	perWord := ly.q * ly.n * ly.s
	for pos := 1; pos <= ly.n; pos++ {
		lo := (pos - 1) * perWord
		fmt.Fprintf(&b, "PEs %6d..%6d support word %q (position %d)\n",
			lo, lo+perWord-1, sp.Sentence().Word(pos), pos)
	}

	// Column-block detail.
	b.WriteString("\ncolumn blocks (one per word/role/modifiee group):\n")
	for c := 0; c < ly.s; c++ {
		pos, role, mod := ly.Group(c)
		modStr := "nil"
		if mod != cdg.NilMod {
			modStr = fmt.Sprintf("%d", mod)
		}
		lo := c * ly.s
		disabled := 0
		for v := lo; v < lo+ly.s; v++ {
			if !ly.baseMask[v] {
				disabled++
			}
		}
		fmt.Fprintf(&b, "  block %3d: PEs %6d..%6d  %s/%d.%s mod=%-3s  (%d self-arc PEs disabled)\n",
			c, lo, lo+ly.s-1,
			sp.Sentence().Word(pos), pos, g.RoleName(role), modStr, disabled)
	}
	return b.String()
}

// RenderScanSegments prints the Figure 12 structure for one column
// block: the scanOr segments (one per arc, n PEs each), the disabled
// self-arc rows, the boundary PEs where per-arc ORs land, and the block
// head that receives the scanAnd verdict and sources the copy-scan.
func (ly *Layout) RenderScanSegments(sp *cdg.Space, colGroup int) string {
	g := sp.Grammar()
	pos, role, mod := ly.Group(colGroup)
	modStr := "nil"
	if mod != cdg.NilMod {
		modStr = fmt.Sprintf("%d", mod)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "column block %d — role values of %s/%d.%s mod=%s (PEs %d..%d)\n",
		colGroup, sp.Sentence().Word(pos), pos, g.RoleName(role), modStr,
		colGroup*ly.s, (colGroup+1)*ly.s-1)
	for inst := 0; inst < ly.q*ly.n; inst++ {
		rowLo := inst * ly.n
		peLo := colGroup*ly.s + rowLo
		rPos := inst/ly.q + 1
		rRole := cdg.RoleID(inst % ly.q)
		label := fmt.Sprintf("arc to %s/%d.%s", sp.Sentence().Word(rPos), rPos, g.RoleName(rRole))
		if !ly.baseMask[peLo] {
			fmt.Fprintf(&b, "  PEs %6d..%6d  %-28s DISABLED (arc from the role to itself)\n",
				peLo, peLo+ly.n-1, label)
			continue
		}
		marks := "scanOr segment; boundary PE " + fmt.Sprintf("%d", peLo)
		if ly.blockFirstActive[peLo] {
			marks += "; block head (scanAnd result + copy-scan source)"
		}
		fmt.Fprintf(&b, "  PEs %6d..%6d  %-28s %s\n", peLo, peLo+ly.n-1, label, marks)
	}
	return b.String()
}

// RenderPE describes one virtual PE: which arc elements it owns, in the
// style of the Figure 13 call-out ("each PE processes a 3×3 element
// submatrix").
func (ly *Layout) RenderPE(sp *cdg.Space, v int) string {
	g := sp.Grammar()
	col, row := ly.ColGroup(v), ly.RowGroup(v)
	cp, cr, cm := ly.Group(col)
	rp, rr, rm := ly.Group(row)
	mod := func(m int) string {
		if m == cdg.NilMod {
			return "nil"
		}
		return fmt.Sprintf("%d", m)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "PE %d (col group %d, row group %d)", v, col, row)
	if !ly.baseMask[v] {
		b.WriteString(" [disabled: arc from a role to itself]\n")
		return b.String()
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  columns: %s/%d.%s mod=%s  labels %v\n",
		sp.Sentence().Word(cp), cp, g.RoleName(cr), mod(cm), labelNames(g, cr))
	fmt.Fprintf(&b, "  rows:    %s/%d.%s mod=%s  labels %v\n",
		sp.Sentence().Word(rp), rp, g.RoleName(rr), mod(rm), labelNames(g, rr))
	fmt.Fprintf(&b, "  owns the %dx%d arc-element submatrix for those role values\n", ly.l, ly.l)
	return b.String()
}

func labelNames(g *cdg.Grammar, r cdg.RoleID) []string {
	var out []string
	for _, id := range g.RoleLabels(r) {
		out = append(out, g.LabelName(id))
	}
	return out
}
