package core

import (
	"context"
	"runtime"
	"strings"
	"testing"

	"repro/internal/cdg"
	"repro/internal/grammars"
)

// masparFingerprint parses words on the MasPar backend and renders
// everything observable about the run that must not depend on host
// scheduling: the full work accounting (cycles, scan ops, processor
// counts, ...) and the extracted parses, byte for byte.
func masparFingerprint(t *testing.T, words []string) string {
	t.Helper()
	p := NewParser(grammars.PaperDemo(), WithBackend(MasPar))
	res, err := p.Parse(words)
	if err != nil {
		t.Fatalf("parse %v: %v", words, err)
	}
	var b strings.Builder
	b.WriteString(res.Stats())
	b.WriteByte('\n')
	for _, a := range res.Parses(0) {
		b.WriteString(a.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestMasParDeterminismAcrossGOMAXPROCS is the regression test behind
// the detrand analyzer's GOMAXPROCS allowances: the simulator may use
// runtime.GOMAXPROCS to size its worker pool, because the pool only
// chunks PE sweeps and must never change what the machine computes.
// The same parse under different GOMAXPROCS settings must produce
// identical cycle counts, scan ops, and parse output.
func TestMasParDeterminismAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	sentences := [][]string{
		{"the", "program", "runs"},
		{"the", "program", "runs", "the", "machine"},
		{"runs", "program", "the"}, // rejected input: failure path too
	}
	for _, words := range sentences {
		runtime.GOMAXPROCS(1)
		want := masparFingerprint(t, words)
		for _, n := range []int{2, 8} {
			runtime.GOMAXPROCS(n)
			if got := masparFingerprint(t, words); got != want {
				t.Errorf("%v: GOMAXPROCS=%d diverges from GOMAXPROCS=1:\n got: %s\nwant: %s",
					words, n, got, want)
			}
		}
	}
}

// gangFingerprint parses the batch as one MasPar gang and renders
// every member's accounting and parses in member order.
func gangFingerprint(t *testing.T, batch [][]string) string {
	t.Helper()
	g := grammars.PaperDemo()
	p := NewParser(g, WithBackend(MasPar))
	sents := make([]*cdg.Sentence, len(batch))
	for i, words := range batch {
		sent, err := cdg.Resolve(g, words, nil)
		if err != nil {
			t.Fatalf("resolve %v: %v", words, err)
		}
		sents[i] = sent
	}
	results, err := p.ParseGangContext(context.Background(), sents)
	if err != nil {
		t.Fatalf("gang parse: %v", err)
	}
	var b strings.Builder
	for _, res := range results {
		b.WriteString(res.Stats())
		b.WriteByte('\n')
		for _, a := range res.Parses(0) {
			b.WriteString(a.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TestGangDeterminismAcrossGOMAXPROCS extends the scheduling-
// independence property to ganged execution: a batch of same-length
// sentences — including duplicate members, which take the shared-
// evaluation fast path — must produce identical per-member accounting
// and parses under GOMAXPROCS 1, 2, and 8.
func TestGangDeterminismAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	batch := [][]string{
		{"the", "program", "runs", "the", "machine"},
		{"the", "machine", "runs", "the", "program"},
		{"the", "program", "runs", "the", "machine"}, // duplicate: dedup path
		{"runs", "the", "program", "the", "machine"}, // rejected input
	}
	runtime.GOMAXPROCS(1)
	want := gangFingerprint(t, batch)
	for _, n := range []int{2, 8} {
		runtime.GOMAXPROCS(n)
		if got := gangFingerprint(t, batch); got != want {
			t.Errorf("GOMAXPROCS=%d gang diverges from GOMAXPROCS=1:\n got: %s\nwant: %s",
				n, got, want)
		}
	}
}
