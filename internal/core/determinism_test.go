package core

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/grammars"
)

// masparFingerprint parses words on the MasPar backend and renders
// everything observable about the run that must not depend on host
// scheduling: the full work accounting (cycles, scan ops, processor
// counts, ...) and the extracted parses, byte for byte.
func masparFingerprint(t *testing.T, words []string) string {
	t.Helper()
	p := NewParser(grammars.PaperDemo(), WithBackend(MasPar))
	res, err := p.Parse(words)
	if err != nil {
		t.Fatalf("parse %v: %v", words, err)
	}
	var b strings.Builder
	b.WriteString(res.Stats())
	b.WriteByte('\n')
	for _, a := range res.Parses(0) {
		b.WriteString(a.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestMasParDeterminismAcrossGOMAXPROCS is the regression test behind
// the detrand analyzer's GOMAXPROCS allowances: the simulator may use
// runtime.GOMAXPROCS to size its worker pool, because the pool only
// chunks PE sweeps and must never change what the machine computes.
// The same parse under different GOMAXPROCS settings must produce
// identical cycle counts, scan ops, and parse output.
func TestMasParDeterminismAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	sentences := [][]string{
		{"the", "program", "runs"},
		{"the", "program", "runs", "the", "machine"},
		{"runs", "program", "the"}, // rejected input: failure path too
	}
	for _, words := range sentences {
		runtime.GOMAXPROCS(1)
		want := masparFingerprint(t, words)
		for _, n := range []int{2, 8} {
			runtime.GOMAXPROCS(n)
			if got := masparFingerprint(t, words); got != want {
				t.Errorf("%v: GOMAXPROCS=%d diverges from GOMAXPROCS=1:\n got: %s\nwant: %s",
					words, n, got, want)
			}
		}
	}
}
