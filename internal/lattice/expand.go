package lattice

import (
	"container/heap"
	"sort"
)

// DefaultMaxPaths is the candidate budget used when a caller passes
// maxPaths <= 0. A 20-slot × 4-alternative lattice has ~10¹² raw
// paths; nothing downstream can parse that, so expansion is always
// budgeted.
const DefaultMaxPaths = 1024

// Path is one candidate word sequence through the lattice with its
// combined acoustic score.
type Path struct {
	Words []string
	Score float64
}

// rankedSlot is one slot with its alternatives sorted best-first
// (score descending, word ascending) and per-slot duplicate words
// removed: a duplicate word at a lower score can never produce a new
// word sequence, only a worse-scored copy of one.
type rankedSlot []Alt

func rankSlots(slots [][]Alt) []rankedSlot {
	out := make([]rankedSlot, len(slots))
	for i, s := range slots {
		alts := append([]Alt(nil), s...)
		sort.SliceStable(alts, func(a, b int) bool {
			if alts[a].Score != alts[b].Score {
				return alts[a].Score > alts[b].Score
			}
			return alts[a].Word < alts[b].Word
		})
		uniq := alts[:0]
		seen := make(map[string]bool, len(alts))
		for _, a := range alts {
			if seen[a.Word] {
				continue
			}
			seen[a.Word] = true
			uniq = append(uniq, a)
		}
		out[i] = rankedSlot(uniq)
	}
	return out
}

// expandNode is a frontier entry of the best-first search: a rank
// vector (ranks[i] indexes slot i's sorted alternatives), its score,
// and the last slot whose rank was incremented. Successors only
// increment slots at or after last, which generates every rank vector
// exactly once (increment slot 0 to its final rank, then slot 1, …).
type expandNode struct {
	ranks []int
	score float64
	words []string
	last  int
}

type expandHeap []*expandNode

func (h expandHeap) Len() int { return len(h) }
func (h expandHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score > h[j].score
	}
	return less(h[i].words, h[j].words)
}
func (h expandHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *expandHeap) Push(x any)   { *h = append(*h, x.(*expandNode)) }
func (h *expandHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

func newNode(slots []rankedSlot, ranks []int, last int) *expandNode {
	n := &expandNode{ranks: ranks, last: last, words: make([]string, len(slots))}
	for i, r := range ranks {
		n.words[i] = slots[i][r].Word
		n.score += slots[i][r].Score
	}
	return n
}

// Expand enumerates up to maxPaths candidate paths in best-first order:
// highest combined score first, ties broken by the word sequence so
// the order is fully deterministic. truncated reports that the budget
// cut enumeration short of the full cartesian product. maxPaths <= 0
// uses DefaultMaxPaths.
func (l *Lattice) Expand(maxPaths int) (paths []Path, truncated bool) {
	if len(l.slots) == 0 {
		return nil, false
	}
	if maxPaths <= 0 {
		maxPaths = DefaultMaxPaths
	}
	slots := rankSlots(l.slots)
	h := &expandHeap{newNode(slots, make([]int, len(slots)), 0)}
	for h.Len() > 0 && len(paths) < maxPaths {
		n := heap.Pop(h).(*expandNode)
		paths = append(paths, Path{Words: n.words, Score: n.score})
		for i := n.last; i < len(slots); i++ {
			if n.ranks[i]+1 >= len(slots[i]) {
				continue
			}
			ranks := append([]int(nil), n.ranks...)
			ranks[i]++
			heap.Push(h, newNode(slots, ranks, i))
		}
	}
	return paths, h.Len() > 0
}
