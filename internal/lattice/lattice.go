// Package lattice models the speech-recognition front end the paper's
// introduction motivates: a word lattice of weighted alternatives per
// slot, pruned by CDG syntax. "Because natural language parsing can be
// done quickly and efficiently on commercially available parallel
// machines, it will not be a bottleneck for real-time systems" — this
// package is the consumer of that speed: every lattice hypothesis is a
// sentence to parse, and the constraint network decides which survive.
package lattice

import (
	"fmt"
	"sort"

	"repro/internal/cdg"
	"repro/internal/serial"
)

// Alt is one recognizer alternative for a slot: a word with an acoustic
// score (higher is better).
type Alt struct {
	Word  string
	Score float64
}

// Lattice is a sequence of slots, each with one or more alternatives.
type Lattice struct {
	slots [][]Alt
}

// New creates an empty lattice.
func New() *Lattice { return &Lattice{} }

// AddSlot appends a slot with the given alternatives. At least one
// alternative is required; scores default to 0 (ties broken by order).
func (l *Lattice) AddSlot(alts ...Alt) error {
	if len(alts) == 0 {
		return fmt.Errorf("lattice: a slot needs at least one alternative")
	}
	l.slots = append(l.slots, append([]Alt(nil), alts...))
	return nil
}

// Words is a convenience for unweighted slots.
func (l *Lattice) Words(words ...string) error {
	alts := make([]Alt, len(words))
	for i, w := range words {
		alts[i] = Alt{Word: w}
	}
	return l.AddSlot(alts...)
}

// Slots returns the slot count.
func (l *Lattice) Slots() int { return len(l.slots) }

// Paths returns the number of distinct hypotheses.
func (l *Lattice) Paths() int {
	if len(l.slots) == 0 {
		return 0
	}
	n := 1
	for _, s := range l.slots {
		n *= len(s)
	}
	return n
}

// Hypothesis is one path through the lattice with its combined score
// and parse outcome.
type Hypothesis struct {
	Words []string
	// Score is the sum of the chosen alternatives' acoustic scores.
	Score float64
	// Parses is the number of precedence graphs the grammar admits
	// (0 = syntactically rejected).
	Parses int
	// Ambiguous reports whether the constraint network retained
	// multiple role values.
	Ambiguous bool
}

// Decode parses every hypothesis with g and returns the syntactically
// accepted ones, best score first (ties: fewer parses first, then
// lexicographic). maxParses bounds parse enumeration per hypothesis
// (<= 0: enumerate all).
func (l *Lattice) Decode(g *cdg.Grammar, maxParses int) ([]Hypothesis, error) {
	if len(l.slots) == 0 {
		return nil, fmt.Errorf("lattice: empty")
	}
	var out []Hypothesis
	words := make([]string, len(l.slots))
	score := 0.0

	var rec func(i int) error
	rec = func(i int) error {
		if i == len(l.slots) {
			// A hypothesis with out-of-lexicon words is simply not a
			// sentence of the grammar — rejected, not an error.
			sent, err := cdg.Resolve(g, words, nil)
			if err != nil {
				return nil
			}
			res, err := serial.Parse(g, sent, serial.DefaultOptions())
			if err != nil {
				return err
			}
			parses := res.Network.ExtractParses(maxParses)
			if len(parses) == 0 {
				return nil
			}
			out = append(out, Hypothesis{
				Words:     append([]string(nil), words...),
				Score:     score,
				Parses:    len(parses),
				Ambiguous: res.Ambiguous(),
			})
			return nil
		}
		for _, alt := range l.slots[i] {
			words[i] = alt.Word
			score += alt.Score
			if err := rec(i + 1); err != nil {
				return err
			}
			score -= alt.Score
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Parses != out[j].Parses {
			return out[i].Parses < out[j].Parses
		}
		return less(out[i].Words, out[j].Words)
	})
	return out, nil
}

// Best returns the top-scoring accepted hypothesis, or ok=false when
// syntax rejects every path.
func (l *Lattice) Best(g *cdg.Grammar) (Hypothesis, bool, error) {
	hyps, err := l.Decode(g, 1)
	if err != nil {
		return Hypothesis{}, false, err
	}
	if len(hyps) == 0 {
		return Hypothesis{}, false, nil
	}
	return hyps[0], true, nil
}

func less(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
