// Package lattice models the speech-recognition front end the paper's
// introduction motivates: a word lattice of weighted alternatives per
// slot, pruned by CDG syntax. "Because natural language parsing can be
// done quickly and efficiently on commercially available parallel
// machines, it will not be a bottleneck for real-time systems" — this
// package is the consumer of that speed: every lattice hypothesis is a
// sentence to parse, and the constraint network decides which survive.
package lattice

import (
	"fmt"
	"sort"

	"repro/internal/cdg"
	"repro/internal/serial"
)

// Alt is one recognizer alternative for a slot: a word with an acoustic
// score (higher is better).
type Alt struct {
	Word  string
	Score float64
}

// Lattice is a sequence of slots, each with one or more alternatives.
type Lattice struct {
	slots [][]Alt
}

// New creates an empty lattice.
func New() *Lattice { return &Lattice{} }

// AddSlot appends a slot with the given alternatives. At least one
// alternative is required; scores default to 0 (ties broken by order).
func (l *Lattice) AddSlot(alts ...Alt) error {
	if len(alts) == 0 {
		return fmt.Errorf("lattice: a slot needs at least one alternative")
	}
	l.slots = append(l.slots, append([]Alt(nil), alts...))
	return nil
}

// Words is a convenience for unweighted slots.
func (l *Lattice) Words(words ...string) error {
	alts := make([]Alt, len(words))
	for i, w := range words {
		alts[i] = Alt{Word: w}
	}
	return l.AddSlot(alts...)
}

// Slots returns the slot count.
func (l *Lattice) Slots() int { return len(l.slots) }

// Paths returns the number of distinct hypotheses.
func (l *Lattice) Paths() int {
	if len(l.slots) == 0 {
		return 0
	}
	n := 1
	for _, s := range l.slots {
		n *= len(s)
	}
	return n
}

// Hypothesis is one path through the lattice with its combined score
// and parse outcome.
type Hypothesis struct {
	Words []string
	// Score is the sum of the chosen alternatives' acoustic scores.
	Score float64
	// Parses is the number of precedence graphs the grammar admits
	// (0 = syntactically rejected).
	Parses int
	// Ambiguous reports whether the constraint network retained
	// multiple role values.
	Ambiguous bool
}

// DecodeResult is the outcome of decoding a lattice: the accepted
// hypotheses plus the expansion accounting, so callers can tell a
// genuinely empty answer from one cut short by the path budget.
type DecodeResult struct {
	// Hypotheses are the syntactically accepted paths, best score
	// first; equal scores are ordered by the full word sequence, so
	// the listing is fully deterministic.
	Hypotheses []Hypothesis
	// Expanded is the number of candidate paths actually parsed.
	Expanded int
	// Truncated reports that the path budget stopped expansion before
	// the full cartesian product was enumerated.
	Truncated bool
}

// Decode parses the best-scoring candidate paths (up to
// DefaultMaxPaths of them) with g and returns the syntactically
// accepted ones, best score first (ties: lexicographic on the word
// sequence). maxParses bounds parse enumeration per hypothesis
// (<= 0: enumerate all).
func (l *Lattice) Decode(g *cdg.Grammar, maxParses int) (*DecodeResult, error) {
	return l.DecodeBudget(g, maxParses, 0)
}

// DecodeBudget is Decode with an explicit candidate-path budget
// (maxPaths <= 0: DefaultMaxPaths). Candidates are generated
// best-first by combined score, so when the budget truncates
// enumeration it is the lowest-scoring tail that is dropped.
func (l *Lattice) DecodeBudget(g *cdg.Grammar, maxParses, maxPaths int) (*DecodeResult, error) {
	if len(l.slots) == 0 {
		return nil, fmt.Errorf("lattice: empty")
	}
	paths, truncated := l.Expand(maxPaths)
	res := &DecodeResult{Expanded: len(paths), Truncated: truncated}
	for _, p := range paths {
		// A hypothesis with out-of-lexicon words is simply not a
		// sentence of the grammar — rejected, not an error.
		sent, err := cdg.Resolve(g, p.Words, nil)
		if err != nil {
			continue
		}
		pres, err := serial.Parse(g, sent, serial.DefaultOptions())
		if err != nil {
			return nil, err
		}
		parses := pres.Network.ExtractParses(maxParses)
		if len(parses) == 0 {
			continue
		}
		res.Hypotheses = append(res.Hypotheses, Hypothesis{
			Words:     p.Words,
			Score:     p.Score,
			Parses:    len(parses),
			Ambiguous: pres.Ambiguous(),
		})
	}
	sort.SliceStable(res.Hypotheses, func(i, j int) bool {
		if res.Hypotheses[i].Score != res.Hypotheses[j].Score {
			return res.Hypotheses[i].Score > res.Hypotheses[j].Score
		}
		return less(res.Hypotheses[i].Words, res.Hypotheses[j].Words)
	})
	return res, nil
}

// Best returns the top-scoring accepted hypothesis, or ok=false when
// syntax rejects every path (within the default budget).
func (l *Lattice) Best(g *cdg.Grammar) (Hypothesis, bool, error) {
	res, err := l.Decode(g, 1)
	if err != nil {
		return Hypothesis{}, false, err
	}
	if len(res.Hypotheses) == 0 {
		return Hypothesis{}, false, nil
	}
	return res.Hypotheses[0], true, nil
}

func less(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
