package lattice_test

import (
	"fmt"
	"strings"

	"repro/internal/grammars"
	"repro/internal/lattice"
)

// Example decodes a small recognition lattice: syntax rejects the
// acoustically tempting but ungrammatical path.
func Example() {
	l := lattice.New()
	_ = l.Words("the")
	_ = l.AddSlot(lattice.Alt{Word: "dog", Score: 0.6}, lattice.Alt{Word: "walked", Score: 0.9})
	_ = l.Words("slept")

	// "the walked slept" outscores "the dog slept" acoustically, but
	// only the latter parses.
	best, ok, err := l.Best(grammars.English())
	if err != nil {
		panic(err)
	}
	fmt.Println(ok, strings.Join(best.Words, " "))
	// Output:
	// true the dog slept
}
