package lattice

import (
	"reflect"
	"testing"

	"repro/internal/grammars"
)

func TestDecodePrunesUngrammatical(t *testing.T) {
	g := grammars.English()
	l := New()
	mustSlot(t, l.Words("the"))
	mustSlot(t, l.AddSlot(Alt{"dog", 0.9}, Alt{"ball", 0.4}))
	mustSlot(t, l.AddSlot(Alt{"saw", 0.7}, Alt{"walked", 0.6}))
	mustSlot(t, l.Words("the"))
	mustSlot(t, l.AddSlot(Alt{"man", 0.8}, Alt{"chased", 0.3}))

	if l.Slots() != 5 || l.Paths() != 8 {
		t.Fatalf("slots=%d paths=%d", l.Slots(), l.Paths())
	}
	res, err := l.Decode(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	hyps := res.Hypotheses
	if res.Truncated || res.Expanded != 8 {
		t.Errorf("expanded=%d truncated=%v, want full 8-path expansion", res.Expanded, res.Truncated)
	}
	// "X chased" final slot is ungrammatical ("the dog saw the chased");
	// transitive readings survive only with "man". "the dog walked the
	// man"? walked is a verb; "the dog walked the man" — OBJ allowed →
	// grammatical. So surviving: dog/ball × saw/walked × man = 4.
	if len(hyps) != 4 {
		for _, h := range hyps {
			t.Logf("accepted: %v (%.2f)", h.Words, h.Score)
		}
		t.Fatalf("got %d accepted hypotheses, want 4", len(hyps))
	}
	// Best by score: dog(0.9) saw(0.7) man(0.8) = 2.4.
	want := []string{"the", "dog", "saw", "the", "man"}
	if !reflect.DeepEqual(hyps[0].Words, want) {
		t.Errorf("best = %v, want %v", hyps[0].Words, want)
	}
	// Scores descending.
	for i := 1; i < len(hyps); i++ {
		if hyps[i].Score > hyps[i-1].Score {
			t.Error("hypotheses not sorted by score")
		}
	}
}

func TestBest(t *testing.T) {
	g := grammars.English()
	l := New()
	mustSlot(t, l.Words("the"))
	mustSlot(t, l.AddSlot(Alt{"dog", 0.5}, Alt{"walked", 0.9}))
	mustSlot(t, l.Words("walked"))
	best, ok, err := l.Best(g)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("expected an accepted hypothesis")
	}
	// "the walked walked" is rejected; "the dog walked" survives even
	// though its acoustic score is lower.
	if best.Words[1] != "dog" {
		t.Errorf("best = %v", best.Words)
	}
}

func TestBestAllRejected(t *testing.T) {
	g := grammars.English()
	l := New()
	mustSlot(t, l.Words("walked"))
	mustSlot(t, l.Words("walked"))
	_, ok, err := l.Best(g)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("everything should be rejected")
	}
}

func TestUnknownWordsAreRejectedNotErrors(t *testing.T) {
	g := grammars.English()
	l := New()
	mustSlot(t, l.AddSlot(Alt{"the", 0}, Alt{"zzzunknown", 1}))
	mustSlot(t, l.Words("dog"))
	mustSlot(t, l.Words("walked"))
	res, err := l.Decode(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hypotheses) != 1 || res.Hypotheses[0].Words[0] != "the" {
		t.Errorf("hyps = %v", res.Hypotheses)
	}
}

func TestEmptyLatticeAndSlots(t *testing.T) {
	l := New()
	if _, err := l.Decode(grammars.English(), 0); err == nil {
		t.Error("empty lattice should error")
	}
	if err := l.AddSlot(); err == nil {
		t.Error("empty slot should error")
	}
	if l.Paths() != 0 {
		t.Error("paths of empty lattice")
	}
}

func TestAmbiguityReported(t *testing.T) {
	g := grammars.English()
	l := New()
	for _, w := range []string{"the", "dog", "saw", "the", "man", "with", "the", "telescope"} {
		mustSlot(t, l.Words(w))
	}
	res, err := l.Decode(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	hyps := res.Hypotheses
	if len(hyps) != 1 {
		t.Fatalf("hyps = %d", len(hyps))
	}
	if !hyps[0].Ambiguous || hyps[0].Parses != 2 {
		t.Errorf("ambiguity not reported: %+v", hyps[0])
	}
}

func mustSlot(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
