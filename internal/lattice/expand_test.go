package lattice

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/grammars"
)

func TestExpandBestFirstOrder(t *testing.T) {
	l := New()
	mustSlot(t, l.AddSlot(Alt{"a", 0.9}, Alt{"b", 0.1}))
	mustSlot(t, l.AddSlot(Alt{"c", 0.5}, Alt{"d", 0.4}))
	paths, truncated := l.Expand(0)
	if truncated {
		t.Fatal("no truncation expected")
	}
	var got []string
	var last float64
	for i, p := range paths {
		got = append(got, strings.Join(p.Words, " "))
		if i > 0 && p.Score > last {
			t.Errorf("path %d (%.2f) outscores its predecessor (%.2f)", i, p.Score, last)
		}
		last = p.Score
	}
	want := []string{"a c", "a d", "b c", "b d"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("order = %v, want %v", got, want)
	}
}

// Equal scores order by the word sequence, so expansion (and therefore
// /v1/lattice responses) is byte-stable run to run.
func TestExpandDeterministicUnderEqualScores(t *testing.T) {
	l := New()
	mustSlot(t, l.AddSlot(Alt{"b", 0.5}, Alt{"a", 0.5}))
	mustSlot(t, l.AddSlot(Alt{"d", 0.5}, Alt{"c", 0.5}))
	paths, _ := l.Expand(0)
	var got []string
	for _, p := range paths {
		got = append(got, strings.Join(p.Words, " "))
	}
	want := []string{"a c", "a d", "b c", "b d"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("order = %v, want %v", got, want)
	}
}

func TestExpandBudgetTruncates(t *testing.T) {
	l := New()
	for i := 0; i < 20; i++ {
		mustSlot(t, l.AddSlot(Alt{"w", 0.9}, Alt{"x", 0.5}, Alt{"y", 0.3}, Alt{"z", 0.1}))
	}
	paths, truncated := l.Expand(100)
	if len(paths) != 100 || !truncated {
		t.Fatalf("got %d paths truncated=%v, want the 100-path budget enforced", len(paths), truncated)
	}
	// The best path (all top-ranked alternatives) must come first.
	if strings.Join(paths[0].Words, " ") != strings.TrimSpace(strings.Repeat("w ", 20)) {
		t.Errorf("best path = %v", paths[0].Words)
	}
}

// Duplicate words within one slot collapse to the best-scored copy:
// they cannot produce new word sequences, only worse-scored repeats.
func TestExpandDedupesSlotWords(t *testing.T) {
	l := New()
	mustSlot(t, l.AddSlot(Alt{"a", 0.9}, Alt{"a", 0.2}, Alt{"b", 0.5}))
	paths, truncated := l.Expand(0)
	if truncated || len(paths) != 2 {
		t.Fatalf("paths=%d truncated=%v, want 2 deduped paths", len(paths), truncated)
	}
	if paths[0].Score != 0.9 {
		t.Errorf("dedupe kept score %.2f, want the best-scored copy", paths[0].Score)
	}
}

// Decode must enforce the budget end to end: a lattice whose raw path
// count is astronomical answers within the budget and flags truncation.
func TestDecodeBudgetTruncates(t *testing.T) {
	g := grammars.English()
	l := New()
	mustSlot(t, l.Words("the"))
	for i := 0; i < 11; i++ {
		mustSlot(t, l.AddSlot(Alt{"dog", 0.9}, Alt{"man", 0.5}))
	}
	res, err := l.DecodeBudget(g, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Expanded != 16 || !res.Truncated {
		t.Errorf("expanded=%d truncated=%v, want budget of 16 enforced", res.Expanded, res.Truncated)
	}
}

// Pinned deterministic hypothesis ordering under equal scores: the tie
// breaks on the full word sequence.
func TestDecodeTieBreakIsWordSequence(t *testing.T) {
	g := grammars.English()
	l := New()
	mustSlot(t, l.Words("the"))
	mustSlot(t, l.AddSlot(Alt{"man", 0.5}, Alt{"dog", 0.5}))
	mustSlot(t, l.AddSlot(Alt{"walked", 0.5}, Alt{"slept", 0.5}))
	res, err := l.Decode(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, h := range res.Hypotheses {
		got = append(got, strings.Join(h.Words, " "))
	}
	want := []string{"the dog slept", "the dog walked", "the man slept", "the man walked"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("order = %v, want %v", got, want)
	}
}
