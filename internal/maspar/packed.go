package maspar

import (
	"fmt"
	"math/bits"
)

// Word-parallel scan/router kernels over the packed plural
// representation: 64 PEs per uint64 word, LSB = lowest PE. Each kernel
// is charged exactly like its scalar counterpart in refscan.go
// (chargeScan / chargeRouter) and is held bit-identical to it by the
// property tests in packed_test.go — host word-parallelism is a
// simulation speedup, not a model change.
//
// The segment machinery rides the binary-add carry chain. Every
// segmented primitive here reduces to the lane recurrence
//
//	acc[i] = gen[i] | (^reset[i] & acc[i-1])        (acc[-1] = 0)
//
// over the packed lanes. Complementing b = ^acc turns it into
//
//	b[i] = G[i] | (P[i] & b[i-1])   with   P = ^gen, G = ^gen & reset
//
// which is exactly the carry recurrence c·2 = G + P·c of a binary
// adder (G ⊆ P always holds here, making generate/propagate
// consistent). One bits.Add64 per word therefore propagates all 64
// lane resets at once: S = P + G + cin has carry-out into lane i+1
// precisely where b[i] would be set, so the per-lane carries are
// recovered as C = P ^ G ^ S and b = (C >> 1) | (cout << 63). The
// chain starts with cin = 1 so that acc[-1] = ^b[-1] = 0.
//
//parsec:noalloc
func segFillWord(gen, reset, cin uint64) (acc, cout uint64) {
	p := ^gen
	g := p & reset
	sum, co := bits.Add64(p, g, cin)
	b := ((p ^ g ^ sum) >> 1) | (co << 63)
	return ^b, co
}

// firstActive returns the word index and in-word bit of the lowest
// active PE (ok=false when the mask is empty). Segmented primitives
// need it because the first active PE always begins a segment whether
// or not its head bit is set.
//
//parsec:noalloc
func (m *Machine) firstActive() (w int, bit uint64, ok bool) {
	for i, e := range m.mask {
		if e != 0 {
			return i, e & -e, true
		}
	}
	return 0, 0, false
}

// SegScanOrV is the packed SegScanOr: dst[i] receives the OR of lane
// i's segment up to and including itself; inactive lanes get 0. dst
// may alias data or segHead. All vectors are WordLen words.
//
//parsec:noalloc
func (m *Machine) SegScanOrV(dst, data, segHead []uint64) {
	m.chargeScan()
	cin := uint64(1)
	for w, e := range m.mask {
		var acc uint64
		acc, cin = segFillWord(data[w]&e, segHead[w]&e, cin)
		dst[w] = acc & e
	}
}

// SegScanAndV is the packed SegScanAnd. De Morgan turns the AND-scan
// into an OR-scan of the complement: acc tracks "a zero has been seen
// in this segment", and the result is its complement on active lanes.
//
//parsec:noalloc
func (m *Machine) SegScanAndV(dst, data, segHead []uint64) {
	m.chargeScan()
	cin := uint64(1)
	for w, e := range m.mask {
		acc, co := segFillWord(^data[w]&e, segHead[w]&e, cin)
		dst[w] = ^acc & e
		cin = co
	}
}

// CopySegHeadV is the packed CopySegHead: every active lane receives
// its segment head's data value. With gen = data & effectiveHead and
// reset = effectiveHead the shared recurrence loads the head's value
// (0 or 1) at each head and carries it across the segment.
//
//parsec:noalloc
func (m *Machine) CopySegHeadV(dst, data, segHead []uint64) {
	m.chargeScan()
	fw, fbit, _ := m.firstActive()
	cin := uint64(1)
	for w, e := range m.mask {
		reset := segHead[w] & e
		if w == fw {
			reset |= fbit
		}
		acc, co := segFillWord(data[w]&reset, reset, cin)
		dst[w] = acc & e
		cin = co
	}
}

// SegReduceOrToHeadV is the packed SegReduceOrToHead: each segment's
// OR lands on its head lane, zero elsewhere. The backward recurrence
//
//	r[i] = gen[i] | (^reset[i+1] & r[i+1])
//
// runs on bit-reversed words from the top word down, so the same
// adder-carry kernel serves; the reset stream is pre-shifted down one
// lane because lane i stops absorbing from above when lane i+1 starts
// a new segment. dst must not alias data or segHead.
//
//parsec:noalloc
func (m *Machine) SegReduceOrToHeadV(dst, data, segHead []uint64) {
	m.chargeScan()
	m.segReduceToHead(dst, data, segHead, false)
}

// SegReduceAndToHeadV is the packed SegReduceAndToHead (each segment's
// AND to its head lane). dst must not alias data or segHead.
//
//parsec:noalloc
func (m *Machine) SegReduceAndToHeadV(dst, data, segHead []uint64) {
	m.chargeScan()
	m.segReduceToHead(dst, data, segHead, true)
}

//parsec:noalloc
func (m *Machine) segReduceToHead(dst, data, segHead []uint64, and bool) {
	fw, fbit, _ := m.firstActive()
	cin := uint64(1)
	var resetAbove uint64 // reset word at w+1, for the lane shift
	for w := len(m.mask) - 1; w >= 0; w-- {
		e := m.mask[w]
		reset := segHead[w] & e
		// Lane i's backward flow is blocked by a head at lane i+1.
		s1 := (reset >> 1) | (resetAbove << 63)
		resetAbove = reset
		gen := data[w] & e
		if and {
			gen = ^data[w] & e
		}
		acc, co := segFillWord(bits.Reverse64(gen), bits.Reverse64(s1), cin)
		cin = co
		heads := reset
		if w == fw {
			heads |= fbit
		}
		r := bits.Reverse64(acc)
		if and {
			r = ^r
		}
		dst[w] = r & heads
	}
}

// ReduceOrV returns the global OR over all active lanes.
//
//parsec:noalloc
func (m *Machine) ReduceOrV(data []uint64) Bit {
	m.chargeScan()
	var acc uint64
	for w, e := range m.mask {
		acc |= data[w] & e
	}
	if acc != 0 {
		return 1
	}
	return 0
}

// ReduceAndV returns the global AND over all active lanes (1 when no
// lane is active).
//
//parsec:noalloc
func (m *Machine) ReduceAndV(data []uint64) Bit {
	m.chargeScan()
	var acc uint64
	for w, e := range m.mask {
		acc |= ^data[w] & e
	}
	if acc == 0 {
		return 1
	}
	return 0
}

// routerSeqThreshold is the vector size (in words) below which the
// packed router gather runs on the calling goroutine: spawning workers
// costs more than the gather itself and the sequential path is
// allocation-free.
const routerSeqThreshold = 64

// RouterFetchV is the packed RouterFetch: every active lane pe
// receives bit data[src[pe]]; inactive lanes get 0. src indexes the
// full virtual array. dst must not alias data (the gather reads
// arbitrary source words after dst words are written).
//
// The kernel is adaptive: destination words whose 64 sources are
// consecutive (src[i+1] = src[i]+1 — the word-aligned communication
// shape the PARSEC transpose produces in the packed layout) are
// fetched as one funnel-shifted word instead of 64 bit gathers. The
// run check inspects all 64 lanes, so the fast path is bit-exact; an
// arbitrary scatter degrades gracefully to the per-lane gather, which
// is inherently element-at-a-time (a software router has no word trick
// for a random permutation).
//
//parsec:noalloc
func (m *Machine) RouterFetchV(dst []uint64, src []int32, data []uint64) {
	m.chargeRouter()
	if m.workers <= 1 || m.nw <= routerSeqThreshold {
		gatherWords(dst, src, data, m.mask, 0, m.nw)
		return
	}
	//lint:allow allocfree (parallel path for large vectors: worker handoff allocates; the sequential path under routerSeqThreshold is the one pinned alloc-free)
	m.forAllWords(func(w int) {
		gatherWords(dst, src, data, m.mask, w, w+1)
	})
}

//parsec:noalloc
func gatherWords(dst []uint64, src []int32, data, mask []uint64, lo, hi int) {
	for w := lo; w < hi; w++ {
		e := mask[w]
		base := w << 6
		var o uint64
		if e == ^uint64(0) {
			s0 := src[base]
			run := true
			for b := 1; b < 64; b++ {
				if src[base+b] != s0+int32(b) {
					run = false
					break
				}
			}
			if run {
				// 64 consecutive sources: one (possibly straddling)
				// word fetch. s0+63 is in bounds because src entries
				// are, so the straddle word exists whenever off != 0.
				w0 := int(s0) >> 6
				off := uint(s0) & 63
				o = data[w0] >> off
				if off != 0 {
					o |= data[w0+1] << (64 - off)
				}
				dst[w] = o
				continue
			}
			// Full word, scattered sources: unroll without the
			// bit-iteration loop.
			for b := 0; b < 64; b++ {
				s := src[base+b]
				o |= (data[s>>6] >> (uint(s) & 63) & 1) << uint(b)
			}
		} else {
			for bset := e; bset != 0; bset &= bset - 1 {
				b := bits.TrailingZeros64(bset)
				s := src[base+b]
				o |= (data[s>>6] >> (uint(s) & 63) & 1) << uint(b)
			}
		}
		dst[w] = o
	}
}

// RouterCopyV is the router permutation whose lane mapping is the
// identity on a mirror plural variable: every active lane receives its
// own lane of data, inactive lanes get 0. In the packed
// structure-of-arrays layout the PARSEC (c,r)↔(r,c) transpose lives in
// *which vector* is passed as data, so the per-lane communication the
// scalar backend routed through RouterFetch becomes one masked word
// copy — the "masked portion" of the router op, word-parallel. Charged
// exactly like RouterFetch: it is the same router pass on the modeled
// machine.
func (m *Machine) RouterCopyV(dst, data []uint64) {
	m.chargeRouter()
	for w, e := range m.mask {
		dst[w] = data[w] & e
	}
}

// RouterTransposeV is the router permutation the PARSEC mirror
// exchange uses: with each gang segment's PE block viewed as an s×s
// grid (lane = i·s+j within the segment, vSeg = s²), every active lane
// (i,j) receives data's lane (j,i) of the same segment; inactive lanes
// get 0. On a solo program (gang of one) this is the plain whole-array
// transpose. The scalar backend ran this as a per-lane RouterFetch
// along transposeSrc; here it is word-parallel: the packed vector is
// cut into 64×64 bit tiles, each tile is transposed with the classic
// in-register bit-matrix transpose, and tiles land at their mirrored
// position. Funnel shifts handle rows that straddle word boundaries (s
// need not be a multiple of 64). dst must not alias data. Charged
// exactly like RouterFetch — one router pass on the modeled machine
// serves every segment at once (the permutation is segment-local, so
// the router routes all segments in the same pass).
func (m *Machine) RouterTransposeV(dst, data []uint64, s int) {
	if s*s != m.vSeg {
		panic(fmt.Sprintf("maspar: RouterTransposeV grid %d×%d does not cover vSeg=%d", s, s, m.vSeg))
	}
	m.chargeRouter()
	for seg := 0; seg < m.segs; seg++ {
		lo, hi := seg*m.segWords, (seg+1)*m.segWords
		transposeGrid(dst[lo:hi], data[lo:hi], s)
	}
	for w, e := range m.mask {
		dst[w] &= e
	}
}

// transposeGrid transposes one s×s bit grid stored packed in data into
// dst (both WordsFor(s·s) words); dst is fully overwritten, mask-blind.
func transposeGrid(dst, data []uint64, s int) {
	for w := range dst {
		dst[w] = 0
	}
	var tile [64]uint64
	for ti := 0; ti < s; ti += 64 {
		limI := s - ti // columns of the source tile (bits per row)
		if limI > 64 {
			limI = 64
		}
		var colMask uint64 = ^uint64(0)
		if limI < 64 {
			colMask = (uint64(1) << uint(limI)) - 1
		}
		for tj := 0; tj < s; tj += 64 {
			limJ := s - tj // rows of the source tile
			if limJ > 64 {
				limJ = 64
			}
			// Extract source rows j = tj..tj+limJ-1, columns ti..ti+63.
			for a := 0; a < limJ; a++ {
				base := (tj+a)*s + ti
				w0 := base >> 6
				off := uint(base) & 63
				x := data[w0] >> off
				if off != 0 && w0+1 < len(data) {
					x |= data[w0+1] << (64 - off)
				}
				tile[a] = x & colMask
			}
			for a := limJ; a < 64; a++ {
				tile[a] = 0
			}
			transpose64(&tile)
			// Deposit transposed rows i = ti..ti+limI-1 at columns tj…
			var rowMask uint64 = ^uint64(0)
			if limJ < 64 {
				rowMask = (uint64(1) << uint(limJ)) - 1
			}
			for b := 0; b < limI; b++ {
				val := tile[b] & rowMask
				base := (ti+b)*s + tj
				w0 := base >> 6
				off := uint(base) & 63
				dst[w0] |= val << off
				if off != 0 && w0+1 < len(dst) {
					dst[w0+1] |= val >> (64 - off)
				}
			}
		}
	}
}

// SegmentOrV reduces the active lanes of each gang segment to one bit:
// out[seg] = OR over segment seg's active lanes of data. On the
// modeled machine this is one segmented reduce through the router —
// the same price as the global ReduceOrV it generalizes (a solo
// program's SegmentOrV(data, out) sets out[0] = ReduceOrV(data)) — so
// it is charged as one scan.
func (m *Machine) SegmentOrV(data []uint64, out []Bit) {
	if len(out) < m.segs {
		panic(fmt.Sprintf("maspar: SegmentOrV needs %d output lanes, got %d", m.segs, len(out)))
	}
	m.chargeScan()
	for seg := 0; seg < m.segs; seg++ {
		var acc uint64
		for w := seg * m.segWords; w < (seg+1)*m.segWords; w++ {
			acc |= data[w] & m.mask[w]
		}
		if acc != 0 {
			out[seg] = 1
		} else {
			out[seg] = 0
		}
	}
}

// transpose64 transposes a 64×64 bit matrix in place (row r = a[r],
// column c = bit c) by recursive block swapping — Hacker's Delight
// figure 7-3 scaled up to 64 bits.
func transpose64(a *[64]uint64) {
	j := 32
	mask := uint64(0x00000000FFFFFFFF)
	for j != 0 {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			t := ((a[k] >> uint(j)) ^ a[k+j]) & mask
			a[k] ^= t << uint(j)
			a[k+j] ^= t
		}
		j >>= 1
		mask ^= mask << uint(j)
	}
}

// WordsFor returns the packed vector length covering n PEs.
func WordsFor(n int) int { return (n + 63) / 64 }

// PackBits packs a []Bit plural vector (any nonzero byte = 1) into dst
// (WordsFor(len(src)) words). dst is fully overwritten.
func PackBits(dst []uint64, src []Bit) {
	for w := range dst {
		base := w << 6
		lim := len(src) - base
		if lim > 64 {
			lim = 64
		}
		var x uint64
		for b := 0; b < lim; b++ {
			if src[base+b] != 0 {
				x |= uint64(1) << uint(b)
			}
		}
		dst[w] = x
	}
}

// PackBools packs a []bool plural vector into dst, like PackBits.
func PackBools(dst []uint64, src []bool) {
	for w := range dst {
		base := w << 6
		lim := len(src) - base
		if lim > 64 {
			lim = 64
		}
		var x uint64
		for b := 0; b < lim; b++ {
			if src[base+b] {
				x |= uint64(1) << uint(b)
			}
		}
		dst[w] = x
	}
}

// UnpackBits expands a packed vector into dst (one byte per PE, 0/1).
func UnpackBits(dst []Bit, src []uint64) {
	for i := range dst {
		dst[i] = Bit(src[i>>6] >> (uint(i) & 63) & 1)
	}
}
