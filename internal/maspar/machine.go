// Package maspar simulates the MasPar MP-1 as the paper uses it: a
// massively parallel SIMD machine with up to 16,384 processing elements
// viewed as a linear array, an ACU (Array Control Unit) that broadcasts
// instructions and data, an activity mask, a global router, and the
// router-backed segmented scanOr()/scanAnd() primitives that give the
// algorithm its O(log n) consistency maintenance.
//
// Programming model. Plural (per-PE) data lives in ordinary Go slices
// indexed by virtual PE number; the machine's methods are the
// "instructions" the ACU broadcasts. Each instruction is charged to a
// cycle counter under a configurable cost model, including the
// virtualization multiplier of section 2.2.3: with V virtual PEs on P
// physical PEs, every instruction costs ⌈V/P⌉ times its base price
// because each physical PE emulates that many virtual PEs ("MPL does
// not support transparent processor virtualization" — this package
// does, and charges for it).
//
// Two plural representations coexist. The reference representation is
// one byte per PE ([]Bit) with the scalar kernels of refscan.go; the
// hot representation packs 64 PEs into each uint64 word ([]uint64,
// LSB = lowest PE) with the word-parallel kernels of packed.go. Both
// charge identical cycles — how the *host* computes a lockstep
// instruction is a simulation detail, not a model change — and the
// property tests in packed_test.go hold them bit-identical.
//
// Host goroutines chunk the PE loop for speed; semantics are lockstep
// SIMD (an instruction's reads all precede its writes only when the
// instruction itself needs that, which scans and router sends
// guarantee internally), and results are bit-deterministic.
package maspar

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"time"
)

// PhysicalPEs is the full MP-1 configuration used in the paper.
const PhysicalPEs = 16384

// ClockHz is the MP-1's nominal clock rate (12.5 MHz).
const ClockHz = 12.5e6

// CostModel prices each instruction class in machine cycles. The
// defaults are calibrated in EXPERIMENTS.md so that the demo parse
// lands in the regime the paper reports (§3); the asymptotic shape is
// independent of the constants.
type CostModel struct {
	// Elemental is one broadcast ALU macro-instruction over the PE
	// array (a 32-bit op takes many cycles on 4-bit PEs).
	Elemental uint64
	// ConstraintCheck is one constraint evaluated against one role
	// value or pair inside a PE (the ACU broadcasts the constraint
	// program; the PE interprets it on local data).
	ConstraintCheck uint64
	// ScanBase + ScanPerLevel·log₂(P) is one segmented scan through
	// the global router.
	ScanBase     uint64
	ScanPerLevel uint64
	// RouterBase + RouterPerLevel·log₂(P) is one router permutation.
	RouterBase     uint64
	RouterPerLevel uint64
	// Broadcast is one ACU data broadcast.
	Broadcast uint64
}

// DefaultCosts is the calibrated cost model (see EXPERIMENTS.md E3).
func DefaultCosts() CostModel {
	return CostModel{
		Elemental:       60,
		ConstraintCheck: 12000,
		ScanBase:        600,
		ScanPerLevel:    110,
		RouterBase:      800,
		RouterPerLevel:  130,
		Broadcast:       40,
	}
}

// Machine is one simulated MP-1.
type Machine struct {
	phys  int
	v     int
	nw    int // words per packed plural vector, segs·⌈vSeg/64⌉
	layer int
	costs CostModel

	// Gang geometry. A gang program packs segs independent copies of a
	// vSeg-PE program side by side on one array, each segment padded to
	// a word boundary so packed vectors stay word-aligned per segment:
	// segment b owns lanes [b·64·segWords, b·64·segWords+vSeg). A plain
	// Setup is a gang of one, so vSeg == v and segWords == nw there.
	vSeg     int
	segs     int
	segWords int // words per segment, ⌈vSeg/64⌉

	// mask is the packed activity mask: bit pe&63 of word pe>>6 is PE
	// pe's activity bit. Bits of padding lanes (per-segment tails beyond
	// vSeg) are always zero. valid is the all-real-lanes image the mask
	// resets to; SetMask intersects with it so padding can never
	// activate.
	mask  []uint64
	valid []uint64

	buf arena

	// Cycles is the simulated machine-cycle total.
	Cycles uint64
	// Instr counts elemental instructions, ScanOps segmented scans,
	// RouterOps router permutations, Broadcasts ACU broadcasts, and
	// ConstraintChecks per-PE constraint evaluations.
	Instr            uint64
	ScanOps          uint64
	RouterOps        uint64
	Broadcasts       uint64
	ConstraintChecks uint64

	workers int
}

// New builds a machine with phys physical PEs (use PhysicalPEs for the
// paper's configuration).
func New(phys int, costs CostModel) (*Machine, error) {
	if phys <= 0 {
		return nil, fmt.Errorf("maspar: need a positive PE count, got %d", phys)
	}
	// Workers only chunk the PE sweep: writes are PE-local and cycle
	// charging is host-side, so results are identical at any pool size
	// (enforced by TestMasParDeterminismAcrossGOMAXPROCS).
	//lint:allow detrand (chunking only; output is worker-count independent)
	w := runtime.GOMAXPROCS(0)
	if w < 1 {
		w = 1
	}
	return &Machine{phys: phys, costs: costs, workers: w}, nil
}

// Setup sizes the virtual PE array for a program and enables every PE.
// It returns the virtualization layer count ⌈v/phys⌉. Buffers handed
// out by the arena before Setup must not be reused after it.
func (m *Machine) Setup(v int) (layers int, err error) {
	return m.SetupGang(v, 1)
}

// SetupGang sizes the array for a gang program: segs independent
// copies of a vSeg-PE program packed side by side, each segment padded
// to a 64-lane word boundary. One ACU instruction stream then serves
// every segment at once — host-side batching of the paper's machine,
// not a model change — so the cycle/scan/router counters are charged
// per SEGMENT: the virtualization multiplier is ⌈vSeg/phys⌉ and
// constraint checks count vSeg evaluations per broadcast, exactly what
// a solo run of one segment would be charged. A gang run's counters
// therefore read as "what one member cost", which keeps the paper's
// per-sentence cost model intact while the host amortizes dispatch
// across the gang.
func (m *Machine) SetupGang(vSeg, segs int) (layers int, err error) {
	if vSeg <= 0 {
		return 0, fmt.Errorf("maspar: need a positive virtual PE count, got %d", vSeg)
	}
	if segs <= 0 {
		return 0, fmt.Errorf("maspar: need a positive gang size, got %d", segs)
	}
	m.vSeg = vSeg
	m.segs = segs
	m.segWords = (vSeg + 63) / 64
	m.nw = segs * m.segWords
	// Lane space spans all segments; the last segment's tail needs no
	// padding, so a gang of one has v == vSeg exactly as before.
	m.v = (segs-1)*m.segWords*64 + vSeg
	m.layer = (vSeg + m.phys - 1) / m.phys
	m.valid = make([]uint64, m.nw)
	for w := range m.valid {
		m.valid[w] = ^uint64(0)
	}
	if tail := uint(vSeg & 63); tail != 0 {
		for s := 0; s < segs; s++ {
			m.valid[(s+1)*m.segWords-1] = (uint64(1) << tail) - 1
		}
	}
	m.mask = make([]uint64, m.nw)
	m.fillMask()
	m.buf.reset(m.nw, m.v)
	return m.layer, nil
}

// fillMask enables every real PE (padding bits stay zero).
func (m *Machine) fillMask() {
	copy(m.mask, m.valid)
}

// V returns the virtual PE count of the current program: the full lane
// space including any interior per-segment padding of a gang program
// (padding lanes are never active).
func (m *Machine) V() int { return m.v }

// VSeg returns the per-segment virtual PE count (== V for a solo
// program).
func (m *Machine) VSeg() int { return m.vSeg }

// Segments returns the gang size (1 for a plain Setup).
func (m *Machine) Segments() int { return m.segs }

// SegWords returns the packed-vector words per gang segment; segment b
// owns words [b·SegWords, (b+1)·SegWords) of every plural vector.
func (m *Machine) SegWords() int { return m.segWords }

// SegStride returns the lane stride between gang segments (64·SegWords).
func (m *Machine) SegStride() int { return m.segWords * 64 }

// WordLen returns the length in uint64 words of a packed plural vector
// covering the current program's V PEs.
func (m *Machine) WordLen() int { return m.nw }

// Phys returns the physical PE count.
func (m *Machine) Phys() int { return m.phys }

// Layers returns the virtualization multiplier ⌈V/P⌉.
func (m *Machine) Layers() int { return m.layer }

// logPhys returns ⌈log₂ P⌉ (the scan/router depth).
//
//parsec:noalloc
func (m *Machine) logPhys() uint64 {
	return uint64(bits.Len(uint(m.phys - 1)))
}

func (m *Machine) chargeElemental() {
	m.Instr++
	m.Cycles += m.costs.Elemental * uint64(m.layer)
}

func (m *Machine) chargeChecks(perPE uint64) {
	// Per-segment accounting: a gang's counters read as one member's
	// cost (see SetupGang). For a solo program vSeg == v.
	m.ConstraintChecks += perPE * uint64(m.vSeg)
	m.Cycles += m.costs.ConstraintCheck * perPE * uint64(m.layer)
}

//parsec:noalloc
func (m *Machine) chargeScan() {
	m.ScanOps++
	m.Cycles += (m.costs.ScanBase + m.costs.ScanPerLevel*m.logPhys()) * uint64(m.layer)
}

//parsec:noalloc
func (m *Machine) chargeRouter() {
	m.RouterOps++
	m.Cycles += (m.costs.RouterBase + m.costs.RouterPerLevel*m.logPhys()) * uint64(m.layer)
}

// BroadcastData charges one ACU broadcast (the data itself is whatever
// the caller closes over; on the real machine it streams to all PEs).
func (m *Machine) BroadcastData() {
	m.Broadcasts++
	m.Cycles += m.costs.Broadcast * uint64(m.layer)
}

// ModelTime converts the accumulated cycles to simulated wall-clock
// seconds at the MP-1's clock rate.
func (m *Machine) ModelTime() time.Duration {
	return CyclesToModelTime(m.Cycles)
}

// CyclesToModelTime converts a cycle count to simulated wall-clock
// seconds at the MP-1's clock rate (used for per-sentence attribution
// of ganged runs, where each member's cycles are a snapshot rather
// than the machine total).
func CyclesToModelTime(cycles uint64) time.Duration {
	return time.Duration(float64(cycles) / ClockHz * float64(time.Second))
}

// SetMask recomputes the activity mask: PE i is active iff pred(i).
// Charged as one elemental instruction (a plural comparison). Padding
// lanes of a gang program stay inactive regardless of pred.
func (m *Machine) SetMask(pred func(pe int) bool) {
	m.chargeElemental()
	m.forAllWords(func(w int) {
		base := w << 6
		lim := m.v - base
		if lim > 64 {
			lim = 64
		}
		var x uint64
		for b := 0; b < lim; b++ {
			if pred(base + b) {
				x |= uint64(1) << uint(b)
			}
		}
		m.mask[w] = x & m.valid[w]
	})
}

// SetMaskWords loads a precomputed packed activity mask (len WordLen;
// tail bits beyond V — and, on a gang program, every per-segment
// padding bit — must be zero). Charged as one elemental instruction,
// exactly like SetMask — precomputing the mask words is a host-side
// shortcut for a plural comparison the ACU would broadcast.
func (m *Machine) SetMaskWords(words []uint64) {
	m.chargeElemental()
	copy(m.mask, words)
}

// EnableAll reactivates every PE.
func (m *Machine) EnableAll() {
	m.chargeElemental()
	m.fillMask()
}

// Enabled reports PE pe's activity bit.
//
//parsec:noalloc
func (m *Machine) Enabled(pe int) bool {
	return m.mask[pe>>6]>>(uint(pe)&63)&1 == 1
}

// forAll runs f over every virtual PE (mask-blind), chunked across host
// cores.
func (m *Machine) forAll(f func(pe int)) {
	n := m.v
	nw := m.workers
	if nw > n {
		nw = n
	}
	if nw <= 1 {
		for pe := 0; pe < n; pe++ {
			f(pe)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for pe := lo; pe < hi; pe++ {
				f(pe)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// forAllWords runs f over every packed-vector word index, chunked
// across host cores. Word granularity keeps each 64-PE word owned by
// exactly one worker, so packed plural writes never straddle workers.
func (m *Machine) forAllWords(f func(w int)) {
	n := m.nw
	nworkers := m.workers
	if nworkers > n {
		nworkers = n
	}
	if nworkers <= 1 {
		for w := 0; w < n; w++ {
			f(w)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + nworkers - 1) / nworkers
	for k := 0; k < nworkers; k++ {
		lo, hi := k*chunk, (k+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for w := lo; w < hi; w++ {
				f(w)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// All executes one elemental instruction: f runs on every active PE.
// f must touch only PE-local plural data (its own index in caller
// slices) — that is the SIMD contract.
func (m *Machine) All(f func(pe int)) {
	m.chargeElemental()
	m.forAll(func(pe int) {
		if m.mask[pe>>6]>>(uint(pe)&63)&1 == 1 {
			f(pe)
		}
	})
}

// AllWords executes one elemental instruction over the packed
// representation: f runs once per vector word with that word's activity
// mask. f must touch only word-local plural data (index w in packed
// caller vectors) — the word-granular SIMD contract; it is responsible
// for honouring the mask itself (inactive lanes must keep their values
// or stay zero, depending on the instruction's semantics).
func (m *Machine) AllWords(f func(w int, active uint64)) {
	m.chargeElemental()
	m.forAllWords(func(w int) { f(w, m.mask[w]) })
}

// AllChecks is All for constraint evaluation: it additionally charges
// checksPerPE constraint evaluations per active PE (the dominant cost
// of propagation on the real machine).
func (m *Machine) AllChecks(checksPerPE int, f func(pe int)) {
	m.chargeChecks(uint64(checksPerPE))
	m.All(f)
}

// AllChecksWords is AllWords for constraint evaluation, charging like
// AllChecks.
func (m *Machine) AllChecksWords(checksPerPE int, f func(w int, active uint64)) {
	m.chargeChecks(uint64(checksPerPE))
	m.AllWords(f)
}
