package maspar

import "testing"

func TestAllChecksAccounting(t *testing.T) {
	m := newTestMachine(t, 64, 128) // 2 layers
	c0, k0 := m.Cycles, m.ConstraintChecks
	m.AllChecks(6, func(pe int) {})
	costs := DefaultCosts()
	wantCycles := costs.ConstraintCheck*6*2 + costs.Elemental*2
	if m.Cycles-c0 != wantCycles {
		t.Errorf("AllChecks charged %d cycles, want %d", m.Cycles-c0, wantCycles)
	}
	if m.ConstraintChecks-k0 != 6*128 {
		t.Errorf("check counter = %d, want %d", m.ConstraintChecks-k0, 6*128)
	}
}

func TestBroadcastAccounting(t *testing.T) {
	m := newTestMachine(t, 64, 128)
	c0 := m.Cycles
	m.BroadcastData()
	if m.Cycles-c0 != DefaultCosts().Broadcast*2 {
		t.Errorf("broadcast charge = %d", m.Cycles-c0)
	}
	if m.Broadcasts != 1 {
		t.Errorf("broadcast count = %d", m.Broadcasts)
	}
}

func TestRouterAccounting(t *testing.T) {
	m := newTestMachine(t, 1024, 1024)
	src := make([]int32, 1024)
	data := make([]Bit, 1024)
	c0 := m.Cycles
	m.RouterFetch(src, data)
	costs := DefaultCosts()
	want := costs.RouterBase + costs.RouterPerLevel*10 // log2(1024)=10
	if m.Cycles-c0 != want {
		t.Errorf("router charge = %d, want %d", m.Cycles-c0, want)
	}
	if m.RouterOps != 1 {
		t.Errorf("router ops = %d", m.RouterOps)
	}
}

func TestEnableAllChargesElemental(t *testing.T) {
	m := newTestMachine(t, 16, 16)
	m.SetMask(func(pe int) bool { return false })
	c0 := m.Cycles
	m.EnableAll()
	if m.Cycles == c0 {
		t.Error("EnableAll should cost a cycle charge")
	}
	count := 0
	m.All(func(pe int) { count++ })
	if count != 16 {
		t.Errorf("after EnableAll, %d PEs ran, want 16", count)
	}
}

func TestMachineAccessors(t *testing.T) {
	m := newTestMachine(t, 64, 200)
	if m.Phys() != 64 || m.V() != 200 || m.Layers() != 4 {
		t.Errorf("accessors: phys=%d v=%d layers=%d", m.Phys(), m.V(), m.Layers())
	}
	if !m.Enabled(0) {
		t.Error("PEs start enabled")
	}
}
