package maspar

import "sync"

// arena is a per-Machine free-list of plural buffers so steady-state
// primitives allocate nothing: packed []uint64 vectors (WordLen words)
// and reference []Bit vectors (V bytes). Buffers are handed out hot
// (packed vectors have unspecified contents; byte vectors are cleared,
// matching the zero-filled make the scalar kernels used to do).
//
// A Machine is not safe for concurrent instruction issue — the SIMD
// model is a single ACU — but worker goroutines inside one instruction
// and callers returning buffers from deferred paths do overlap, so the
// free-list itself is mutex-guarded.
type arena struct {
	mu    sync.Mutex
	words [][]uint64 // free packed vectors, each len nw
	bytes [][]Bit    // free byte vectors, each len n
	nw    int        // current packed vector length (words)
	n     int        // current byte vector length (PEs)
}

// reset invalidates all outstanding buffers and re-sizes the arena for
// a new program. Buffers from before the reset are silently dropped
// when returned (their length no longer matches).
func (a *arena) reset(nw, n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.words = a.words[:0]
	a.bytes = a.bytes[:0]
	a.nw = nw
	a.n = n
}

func (a *arena) getWords() []uint64 {
	a.mu.Lock()
	if k := len(a.words); k > 0 {
		v := a.words[k-1]
		a.words[k-1] = nil
		a.words = a.words[:k-1]
		a.mu.Unlock()
		return v
	}
	nw := a.nw
	a.mu.Unlock()
	return make([]uint64, nw)
}

func (a *arena) putWords(v []uint64) {
	a.mu.Lock()
	if len(v) == a.nw && a.nw > 0 {
		a.words = append(a.words, v)
	}
	a.mu.Unlock()
}

//parsec:noalloc
func (a *arena) getBytes() []Bit {
	a.mu.Lock()
	if k := len(a.bytes); k > 0 {
		b := a.bytes[k-1]
		a.bytes[k-1] = nil
		a.bytes = a.bytes[:k-1]
		a.mu.Unlock()
		for i := range b {
			b[i] = 0
		}
		return b
	}
	n := a.n
	a.mu.Unlock()
	//lint:allow allocfree (free-list miss: first call per buffer; steady state recycles)
	return make([]Bit, n)
}

//parsec:noalloc
func (a *arena) putBytes(b []Bit) {
	a.mu.Lock()
	if len(b) == a.n && a.n > 0 {
		//lint:allow allocfree (free-list growth is amortized; steady state appends into capacity)
		a.bytes = append(a.bytes, b)
	}
	a.mu.Unlock()
}

// GetVec returns a packed plural vector (WordLen words) from the
// arena. Contents are unspecified — every packed kernel writes all of
// dst. Return it with PutVec when done; vectors outlive neither a
// Setup nor the Machine.
func (m *Machine) GetVec() []uint64 { return m.buf.getWords() }

// PutVec returns a packed vector to the arena for reuse. Passing a
// slice of the wrong length (e.g. from before a Setup) is a no-op.
func (m *Machine) PutVec(v []uint64) { m.buf.putWords(v) }

// GetBits returns a zeroed plural byte vector (V bytes) from the arena.
func (m *Machine) GetBits() []Bit { return m.buf.getBytes() }

// PutBits returns a byte vector to the arena for reuse. The scalar
// primitives hand their results out of the arena, so callers that are
// done with a result can recycle it to make the byte API allocation-free
// in steady state too.
//
//parsec:noalloc
func (m *Machine) PutBits(b []Bit) { m.buf.putBytes(b) }
