package maspar

// The MP-1's second communication fabric: the X-Net, a toroidal
// 8-neighbor mesh over the physical 128×128 PE grid. MPL exposes the
// PE array both as a linear array and as a two-dimensional grid
// ("MPL allows the programmer to view the PEs in two ways"); PARSEC
// uses the linear view and the router, but the X-Net is part of the
// machine and other MPL programs (and our tests/benches) exercise it.
//
// We model the X-Net over the *virtual* PE array arranged row-major in
// a grid of the machine's choosing. An X-Net shift moves every active
// PE's value one step in a compass direction, toroidally. Cost: one
// cheap neighbor hop per instruction (virtualized like everything
// else), far cheaper than a router pass — which is exactly the
// trade-off that makes the router's scans remarkable.

import "fmt"

// Direction is a compass direction for X-Net shifts.
type Direction int

// The eight X-Net directions.
const (
	North Direction = iota
	South
	East
	West
	NorthEast
	NorthWest
	SouthEast
	SouthWest
)

func (d Direction) String() string {
	switch d {
	case North:
		return "N"
	case South:
		return "S"
	case East:
		return "E"
	case West:
		return "W"
	case NorthEast:
		return "NE"
	case NorthWest:
		return "NW"
	case SouthEast:
		return "SE"
	case SouthWest:
		return "SW"
	}
	return "?"
}

func (d Direction) delta() (dr, dc int) {
	switch d {
	case North:
		return -1, 0
	case South:
		return 1, 0
	case East:
		return 0, 1
	case West:
		return 0, -1
	case NorthEast:
		return -1, 1
	case NorthWest:
		return -1, -1
	case SouthEast:
		return 1, 1
	case SouthWest:
		return 1, -1
	}
	return 0, 0
}

// Grid is a 2-D view of the virtual PE array (rows×cols = V), the MPL
// "128×128 grid" perspective.
type Grid struct {
	m          *Machine
	rows, cols int
}

// GridView arranges the machine's virtual PEs as a rows×cols toroidal
// grid. rows·cols must equal V.
func (m *Machine) GridView(rows, cols int) (*Grid, error) {
	if rows <= 0 || cols <= 0 || rows*cols != m.v {
		return nil, fmt.Errorf("maspar: grid %dx%d does not cover %d virtual PEs", rows, cols, m.v)
	}
	return &Grid{m: m, rows: rows, cols: cols}, nil
}

// Rows returns the grid height.
func (g *Grid) Rows() int { return g.rows }

// Cols returns the grid width.
func (g *Grid) Cols() int { return g.cols }

// PE returns the linear PE index of grid cell (r, c), toroidally
// wrapped.
func (g *Grid) PE(r, c int) int {
	r = ((r % g.rows) + g.rows) % g.rows
	c = ((c % g.cols) + g.cols) % g.cols
	return r*g.cols + c
}

// xnetCost is the cycle price of one neighbor hop (cheap, unlike the
// router).
const xnetCost = 8

// Shift moves data one X-Net hop: every active PE receives the value
// of its neighbor in the *opposite* of dir (i.e. values travel in
// direction dir), toroidally. Inactive PEs receive zero and do not
// transmit restrictions — like the real X-Net, the wire carries the
// neighbor's register regardless of its activity bit; masking governs
// only who stores the result.
func (g *Grid) Shift(data []Bit, dir Direction) []Bit {
	m := g.m
	m.Instr++
	m.Cycles += xnetCost * uint64(m.layer)
	dr, dc := dir.delta()
	out := make([]Bit, m.v)
	m.forAll(func(pe int) {
		if !m.Enabled(pe) {
			return
		}
		r, c := pe/g.cols, pe%g.cols
		src := g.PE(r-dr, c-dc)
		out[pe] = data[src]
	})
	return out
}

// ShiftInt32 is Shift for 32-bit plural data.
func (g *Grid) ShiftInt32(data []int32, dir Direction) []int32 {
	m := g.m
	m.Instr++
	m.Cycles += xnetCost * 4 * uint64(m.layer) // 4-bit PEs move wide data in nibbles
	dr, dc := dir.delta()
	out := make([]int32, m.v)
	m.forAll(func(pe int) {
		if !m.Enabled(pe) {
			return
		}
		r, c := pe/g.cols, pe%g.cols
		src := g.PE(r-dr, c-dc)
		out[pe] = data[src]
	})
	return out
}

// RowReduceOr ORs each grid row using log₂(cols) X-Net hops (the
// doubling trick), depositing the row OR in every cell of the row.
// It returns the result and performs ⌈log₂ cols⌉ shift instructions.
func (g *Grid) RowReduceOr(data []Bit) []Bit {
	cur := make([]Bit, len(data))
	copy(cur, data)
	for step := 1; step < g.cols; step *= 2 {
		shifted := g.shiftByCols(cur, step)
		for i := range cur {
			cur[i] |= shifted[i]
		}
		g.m.Instr++ // the OR combine
		g.m.Cycles += uint64(g.m.costs.Elemental) * uint64(g.m.layer)
	}
	return cur
}

// shiftByCols moves values step columns eastward (toroidal), charged as
// one hop per call (the MP-1 supports distance-1 hops; multi-distance
// is hop-sequenced — we charge log-many calls total from RowReduceOr).
func (g *Grid) shiftByCols(data []Bit, step int) []Bit {
	m := g.m
	m.Instr++
	m.Cycles += xnetCost * uint64(m.layer)
	out := make([]Bit, m.v)
	m.forAll(func(pe int) {
		if !m.Enabled(pe) {
			return
		}
		r, c := pe/g.cols, pe%g.cols
		out[pe] = data[g.PE(r, c-step)]
	})
	return out
}

// SegScanAdd performs an inclusive segmented integer sum scan through
// the router (the MP-1's scanAdd primitive). Same segment semantics as
// SegScanOr.
func (m *Machine) SegScanAdd(data []int32, segHead []bool) []int32 {
	m.chargeScan()
	out := make([]int32, m.v)
	var acc int32
	open := false
	for pe := 0; pe < m.v; pe++ {
		if !m.Enabled(pe) {
			continue
		}
		if segHead[pe] || !open {
			acc = 0
			open = true
		}
		acc += data[pe]
		out[pe] = acc
	}
	return out
}

// SegScanMax performs an inclusive segmented max scan.
func (m *Machine) SegScanMax(data []int32, segHead []bool) []int32 {
	m.chargeScan()
	out := make([]int32, m.v)
	acc := int32(-1 << 31)
	open := false
	for pe := 0; pe < m.v; pe++ {
		if !m.Enabled(pe) {
			continue
		}
		if segHead[pe] || !open {
			acc = -1 << 31
			open = true
		}
		if data[pe] > acc {
			acc = data[pe]
		}
		out[pe] = acc
	}
	return out
}

// ReduceAdd sums over all active PEs (delivered to the ACU).
func (m *Machine) ReduceAdd(data []int32) int64 {
	m.chargeScan()
	var acc int64
	for pe := 0; pe < m.v; pe++ {
		if m.Enabled(pe) {
			acc += int64(data[pe])
		}
	}
	return acc
}

// Enumerate gives each active PE its rank among active PEs (0-based),
// the standard enumerate() = scanAdd(1) − 1 idiom used for compaction.
func (m *Machine) Enumerate() []int32 {
	m.chargeScan()
	out := make([]int32, m.v)
	var rank int32
	for pe := 0; pe < m.v; pe++ {
		if m.Enabled(pe) {
			out[pe] = rank
			rank++
		}
	}
	return out
}
