package maspar

import (
	"fmt"
	"testing"
)

func benchMachine(b *testing.B, v int) *Machine {
	b.Helper()
	m, err := New(PhysicalPEs, DefaultCosts())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Setup(v); err != nil {
		b.Fatal(err)
	}
	return m
}

// reportCycles attaches the simulated machine-cycle cost of one
// iteration so BENCH_scan.json can track the cost model alongside
// host-side ns/op.
func reportCycles(b *testing.B, m *Machine) {
	b.Helper()
	if b.N > 0 {
		b.ReportMetric(float64(m.Cycles)/float64(b.N), "cycles/op")
	}
}

// BenchmarkSegScanOr measures the packed word-parallel scan — the hot
// path the core backend runs in its filter loop.
func BenchmarkSegScanOr(b *testing.B) {
	for _, v := range []int{1024, 16384, 262144} {
		b.Run(fmt.Sprintf("v=%d", v), func(b *testing.B) {
			m := benchMachine(b, v)
			data := make([]Bit, v)
			head := make([]bool, v)
			for i := 0; i < v; i += 16 {
				head[i] = true
				data[i+v/128%16] = 1
			}
			dataV, headV, dst := m.GetVec(), m.GetVec(), m.GetVec()
			PackBits(dataV, data)
			PackBools(headV, head)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.SegScanOrV(dst, dataV, headV)
			}
			reportCycles(b, m)
		})
	}
}

// BenchmarkSegScanOrRef is the scalar reference kernel on the same
// shape, for the packed-vs-refscan trajectory in BENCH_scan.json.
func BenchmarkSegScanOrRef(b *testing.B) {
	for _, v := range []int{1024, 16384} {
		b.Run(fmt.Sprintf("v=%d", v), func(b *testing.B) {
			m := benchMachine(b, v)
			data := make([]Bit, v)
			head := make([]bool, v)
			for i := 0; i < v; i += 16 {
				head[i] = true
				data[i+v/128%16] = 1
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.PutBits(m.SegScanOr(data, head))
			}
			reportCycles(b, m)
		})
	}
}

// BenchmarkRouterFetch measures the router primitive in the shape
// production runs it: the PARSEC mirror exchange, i.e. the s×s
// transpose permutation over the PE grid, executed by the tiled
// word-parallel RouterTransposeV kernel. The scatter sub-benchmarks
// measure the generic RouterFetchV gather on an arbitrary permutation,
// which is inherently a per-lane operation.
func BenchmarkRouterFetch(b *testing.B) {
	for _, s := range []int{32, 128, 256} {
		v := s * s
		b.Run(fmt.Sprintf("v=%d", v), func(b *testing.B) {
			m := benchMachine(b, v)
			data := make([]Bit, v)
			for i := range data {
				data[i] = Bit(i & 1)
			}
			dataV, dst := m.GetVec(), m.GetVec()
			PackBits(dataV, data)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.RouterTransposeV(dst, dataV, s)
			}
			reportCycles(b, m)
		})
	}
	for _, v := range []int{16384, 65536} {
		b.Run(fmt.Sprintf("scatter/v=%d", v), func(b *testing.B) {
			m := benchMachine(b, v)
			data := make([]Bit, v)
			src := make([]int32, v)
			for i := range src {
				src[i] = int32((i * 7) % v)
			}
			dataV, dst := m.GetVec(), m.GetVec()
			PackBits(dataV, data)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.RouterFetchV(dst, src, dataV)
			}
			reportCycles(b, m)
		})
	}
}

// BenchmarkRouterCopy measures the masked-copy router primitive the
// consistency round's mirror exchange uses directly.
func BenchmarkRouterCopy(b *testing.B) {
	m := benchMachine(b, 16384)
	dataV, dst := m.GetVec(), m.GetVec()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RouterCopyV(dst, dataV)
	}
	reportCycles(b, m)
}

// BenchmarkRouterFetchRef is the scalar reference gather.
func BenchmarkRouterFetchRef(b *testing.B) {
	for _, v := range []int{1024, 16384} {
		b.Run(fmt.Sprintf("v=%d", v), func(b *testing.B) {
			m := benchMachine(b, v)
			data := make([]Bit, v)
			src := make([]int32, v)
			for i := range src {
				src[i] = int32((i * 7) % v)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.PutBits(m.RouterFetch(src, data))
			}
			reportCycles(b, m)
		})
	}
}

// BenchmarkSegReduceOrToHead covers the backward (reduce-to-head)
// carry chain, the other scan shape the consistency round leans on.
func BenchmarkSegReduceOrToHead(b *testing.B) {
	v := 16384
	m := benchMachine(b, v)
	data := make([]Bit, v)
	head := make([]bool, v)
	for i := 0; i < v; i += 16 {
		head[i] = true
		data[(i+3)%v] = 1
	}
	dataV, headV, dst := m.GetVec(), m.GetVec(), m.GetVec()
	PackBits(dataV, data)
	PackBools(headV, head)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SegReduceOrToHeadV(dst, dataV, headV)
	}
	reportCycles(b, m)
}

func BenchmarkAll(b *testing.B) {
	m := benchMachine(b, 65536)
	data := make([]Bit, 65536)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.All(func(pe int) { data[pe] ^= 1 })
	}
	reportCycles(b, m)
}

func BenchmarkXNetShift(b *testing.B) {
	m := benchMachine(b, 128*128)
	g, err := m.GridView(128, 128)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]Bit, m.V())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data = g.Shift(data, East)
	}
	reportCycles(b, m)
}
