package maspar

import (
	"fmt"
	"testing"
)

func benchMachine(b *testing.B, v int) *Machine {
	b.Helper()
	m, err := New(PhysicalPEs, DefaultCosts())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Setup(v); err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkSegScanOr(b *testing.B) {
	for _, v := range []int{1024, 16384, 262144} {
		b.Run(fmt.Sprintf("v=%d", v), func(b *testing.B) {
			m := benchMachine(b, v)
			data := make([]Bit, v)
			head := make([]bool, v)
			for i := 0; i < v; i += 16 {
				head[i] = true
				data[i+v/128%16] = 1
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.SegScanOr(data, head)
			}
		})
	}
}

func BenchmarkRouterFetch(b *testing.B) {
	for _, v := range []int{1024, 65536} {
		b.Run(fmt.Sprintf("v=%d", v), func(b *testing.B) {
			m := benchMachine(b, v)
			data := make([]Bit, v)
			src := make([]int32, v)
			for i := range src {
				src[i] = int32((i * 7) % v)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.RouterFetch(src, data)
			}
		})
	}
}

func BenchmarkAll(b *testing.B) {
	m := benchMachine(b, 65536)
	data := make([]Bit, 65536)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.All(func(pe int) { data[pe] ^= 1 })
	}
}

func BenchmarkXNetShift(b *testing.B) {
	m := benchMachine(b, 128*128)
	g, err := m.GridView(128, 128)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]Bit, m.V())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data = g.Shift(data, East)
	}
}
