package maspar

import (
	"testing"
	"testing/quick"
)

func gridMachine(t *testing.T, rows, cols int) (*Machine, *Grid) {
	t.Helper()
	m := newTestMachine(t, 64, rows*cols)
	g, err := m.GridView(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	return m, g
}

func TestGridViewValidation(t *testing.T) {
	m := newTestMachine(t, 64, 12)
	if _, err := m.GridView(3, 4); err != nil {
		t.Errorf("3x4 over 12: %v", err)
	}
	for _, tc := range [][2]int{{3, 5}, {0, 12}, {12, 0}, {-1, -12}} {
		if _, err := m.GridView(tc[0], tc[1]); err == nil {
			t.Errorf("GridView(%d,%d) should fail", tc[0], tc[1])
		}
	}
}

func TestGridPEWraps(t *testing.T) {
	_, g := gridMachine(t, 3, 4)
	if g.PE(0, 0) != 0 || g.PE(2, 3) != 11 {
		t.Error("corners")
	}
	if g.PE(-1, 0) != g.PE(2, 0) {
		t.Error("row wrap")
	}
	if g.PE(0, -1) != g.PE(0, 3) {
		t.Error("col wrap")
	}
	if g.PE(3, 4) != g.PE(0, 0) {
		t.Error("positive wrap")
	}
	if g.Rows() != 3 || g.Cols() != 4 {
		t.Error("dims")
	}
}

func TestShiftDirections(t *testing.T) {
	_, g := gridMachine(t, 3, 3)
	data := make([]Bit, 9)
	data[g.PE(1, 1)] = 1 // center
	for _, tc := range []struct {
		dir  Direction
		r, c int
	}{
		{North, 0, 1}, {South, 2, 1}, {East, 1, 2}, {West, 1, 0},
		{NorthEast, 0, 2}, {NorthWest, 0, 0}, {SouthEast, 2, 2}, {SouthWest, 2, 0},
	} {
		out := g.Shift(data, tc.dir)
		if out[g.PE(tc.r, tc.c)] != 1 {
			t.Errorf("shift %v: expected 1 at (%d,%d)", tc.dir, tc.r, tc.c)
		}
		ones := 0
		for _, v := range out {
			if v == 1 {
				ones++
			}
		}
		if ones != 1 {
			t.Errorf("shift %v: %d ones, want 1", tc.dir, ones)
		}
	}
}

func TestShiftToroidal(t *testing.T) {
	_, g := gridMachine(t, 2, 2)
	data := []Bit{1, 0, 0, 0}   // (0,0)
	out := g.Shift(data, North) // wraps to (1,0)
	if out[g.PE(1, 0)] != 1 {
		t.Error("toroidal wrap failed")
	}
}

func TestShiftRespectsMask(t *testing.T) {
	m, g := gridMachine(t, 2, 2)
	data := []Bit{1, 1, 1, 1}
	m.SetMask(func(pe int) bool { return pe == 0 })
	out := g.Shift(data, East)
	if out[0] != 1 {
		t.Error("active PE should receive")
	}
	for pe := 1; pe < 4; pe++ {
		if out[pe] != 0 {
			t.Error("inactive PEs must not store")
		}
	}
}

func TestShiftInt32(t *testing.T) {
	_, g := gridMachine(t, 2, 3)
	data := []int32{1, 2, 3, 4, 5, 6}
	out := g.ShiftInt32(data, East)
	// value travels east: cell (r,c) receives (r,c-1).
	if out[g.PE(0, 1)] != 1 || out[g.PE(0, 0)] != 3 {
		t.Errorf("out = %v", out)
	}
}

func TestRowReduceOr(t *testing.T) {
	_, g := gridMachine(t, 3, 4)
	data := make([]Bit, 12)
	data[g.PE(0, 2)] = 1
	data[g.PE(2, 0)] = 1
	out := g.RowReduceOr(data)
	for c := 0; c < 4; c++ {
		if out[g.PE(0, c)] != 1 {
			t.Errorf("row 0 col %d should be 1", c)
		}
		if out[g.PE(1, c)] != 0 {
			t.Errorf("row 1 col %d should be 0", c)
		}
		if out[g.PE(2, c)] != 1 {
			t.Errorf("row 2 col %d should be 1", c)
		}
	}
}

func TestSegScanAdd(t *testing.T) {
	m := newTestMachine(t, 16, 6)
	data := []int32{1, 2, 3, 4, 5, 6}
	head := []bool{true, false, false, true, false, false}
	got := m.SegScanAdd(data, head)
	want := []int32{1, 3, 6, 4, 9, 15}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pe %d: %d want %d", i, got[i], want[i])
		}
	}
}

func TestSegScanMax(t *testing.T) {
	m := newTestMachine(t, 16, 6)
	data := []int32{3, 1, 7, -5, -2, -9}
	head := []bool{true, false, false, true, false, false}
	got := m.SegScanMax(data, head)
	want := []int32{3, 3, 7, -5, -2, -2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pe %d: %d want %d", i, got[i], want[i])
		}
	}
}

func TestReduceAddAndEnumerate(t *testing.T) {
	m := newTestMachine(t, 16, 8)
	data := []int32{1, 1, 1, 1, 1, 1, 1, 1}
	if got := m.ReduceAdd(data); got != 8 {
		t.Errorf("sum = %d", got)
	}
	m.SetMask(func(pe int) bool { return pe%2 == 0 })
	if got := m.ReduceAdd(data); got != 4 {
		t.Errorf("masked sum = %d", got)
	}
	ranks := m.Enumerate()
	wantRanks := []int32{0, 0, 1, 0, 2, 0, 3, 0}
	for i, w := range wantRanks {
		if ranks[i] != w {
			t.Errorf("rank[%d] = %d, want %d", i, ranks[i], w)
		}
	}
}

// TestQuickShiftRoundTrip: shifting east then west (all PEs active)
// restores the original data.
func TestQuickShiftRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		s := seed | 1
		rnd := func(n int) int {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			v := int(s % int64(n))
			if v < 0 {
				v = -v
			}
			return v
		}
		rows, cols := rnd(6)+1, rnd(6)+1
		m := newTestMachine(t, 64, rows*cols)
		g, err := m.GridView(rows, cols)
		if err != nil {
			return false
		}
		data := make([]Bit, rows*cols)
		for i := range data {
			data[i] = Bit(rnd(2))
		}
		pairs := [][2]Direction{
			{East, West}, {North, South}, {NorthEast, SouthWest}, {SouthEast, NorthWest},
		}
		p := pairs[rnd(len(pairs))]
		out := g.Shift(g.Shift(data, p[0]), p[1])
		for i := range data {
			if out[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickScanAddMatchesReference validates SegScanAdd against a
// straightforward reference with random masks.
func TestQuickScanAddMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		s := seed | 1
		rnd := func(n int) int {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			v := int(s % int64(n))
			if v < 0 {
				v = -v
			}
			return v
		}
		v := rnd(150) + 1
		m := newTestMachine(t, 32, v)
		data := make([]int32, v)
		head := make([]bool, v)
		mask := make([]bool, v)
		for i := 0; i < v; i++ {
			data[i] = int32(rnd(20) - 10)
			head[i] = rnd(4) == 0
			mask[i] = rnd(6) != 0
		}
		m.SetMask(func(pe int) bool { return mask[pe] })
		got := m.SegScanAdd(data, head)
		var acc int32
		open := false
		for i := 0; i < v; i++ {
			if !mask[i] {
				if got[i] != 0 {
					return false
				}
				continue
			}
			if head[i] || !open {
				acc = 0
				open = true
			}
			acc += data[i]
			if got[i] != acc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
