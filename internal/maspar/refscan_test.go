package maspar

import (
	"testing"
	"testing/quick"
)

func newTestMachine(t *testing.T, phys, v int) *Machine {
	t.Helper()
	m, err := New(phys, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Setup(v); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSetupLayers(t *testing.T) {
	m, _ := New(100, DefaultCosts())
	for _, tc := range []struct{ v, layers int }{
		{1, 1}, {100, 1}, {101, 2}, {200, 2}, {201, 3}, {16384, 164},
	} {
		l, err := m.Setup(tc.v)
		if err != nil {
			t.Fatal(err)
		}
		if l != tc.layers {
			t.Errorf("Setup(%d) layers = %d, want %d", tc.v, l, tc.layers)
		}
	}
	if _, err := m.Setup(0); err == nil {
		t.Error("Setup(0) should fail")
	}
}

func TestNewRejectsBadPE(t *testing.T) {
	if _, err := New(0, DefaultCosts()); err == nil {
		t.Error("New(0) should fail")
	}
}

func TestSegScanOrBasic(t *testing.T) {
	m := newTestMachine(t, 16, 8)
	data := []Bit{0, 1, 0, 0, 1, 0, 0, 0}
	head := []bool{true, false, false, false, true, false, false, false}
	got := m.SegScanOr(data, head)
	want := []Bit{0, 1, 1, 1, 1, 1, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pe %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestSegScanAndBasic(t *testing.T) {
	m := newTestMachine(t, 16, 6)
	data := []Bit{1, 1, 0, 1, 1, 1}
	head := []bool{true, false, false, true, false, false}
	got := m.SegScanAnd(data, head)
	want := []Bit{1, 1, 0, 1, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pe %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestScansSkipInactivePEs(t *testing.T) {
	m := newTestMachine(t, 16, 6)
	// Disable PE 1 (which holds a 1 that must not leak into the OR).
	m.SetMask(func(pe int) bool { return pe != 1 })
	data := []Bit{0, 1, 0, 0, 0, 0}
	head := []bool{true, false, false, false, false, false}
	got := m.SegScanOr(data, head)
	for i, v := range got {
		if v != 0 {
			t.Errorf("pe %d: got %d, want 0 (inactive PE contributed)", i, v)
		}
	}
}

func TestSegHeadOnInactivePEIgnored(t *testing.T) {
	m := newTestMachine(t, 16, 5)
	// PE 2 would start a segment but is disabled; the segment must
	// continue across it.
	m.SetMask(func(pe int) bool { return pe != 2 })
	data := []Bit{1, 0, 0, 0, 0}
	head := []bool{true, false, true, false, false}
	got := m.SegScanOr(data, head)
	if got[3] != 1 || got[4] != 1 {
		t.Errorf("segment should flow across the disabled head: %v", got)
	}
}

func TestSegReduceToHead(t *testing.T) {
	m := newTestMachine(t, 16, 8)
	data := []Bit{0, 1, 0, 0, 1, 1, 0, 0}
	head := []bool{true, false, false, false, true, false, true, false}
	or := m.SegReduceOrToHead(data, head)
	wantOr := []Bit{1, 0, 0, 0, 1, 0, 0, 0}
	for i := range wantOr {
		if or[i] != wantOr[i] {
			t.Errorf("or pe %d: got %d want %d", i, or[i], wantOr[i])
		}
	}
	and := m.SegReduceAndToHead(data, head)
	wantAnd := []Bit{0, 0, 0, 0, 1, 0, 0, 0}
	for i := range wantAnd {
		if and[i] != wantAnd[i] {
			t.Errorf("and pe %d: got %d want %d", i, and[i], wantAnd[i])
		}
	}
}

func TestCopySegHead(t *testing.T) {
	m := newTestMachine(t, 16, 6)
	data := []Bit{1, 0, 0, 0, 0, 0}
	head := []bool{true, false, false, true, false, false}
	got := m.CopySegHead(data, head)
	want := []Bit{1, 1, 1, 0, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pe %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestReduceOrAnd(t *testing.T) {
	m := newTestMachine(t, 16, 4)
	if m.ReduceOr([]Bit{0, 0, 0, 0}) != 0 {
		t.Error("ReduceOr all-zero")
	}
	if m.ReduceOr([]Bit{0, 0, 1, 0}) != 1 {
		t.Error("ReduceOr with one 1")
	}
	if m.ReduceAnd([]Bit{1, 1, 1, 1}) != 1 {
		t.Error("ReduceAnd all-one")
	}
	if m.ReduceAnd([]Bit{1, 0, 1, 1}) != 0 {
		t.Error("ReduceAnd with one 0")
	}
}

func TestRouterFetchTranspose(t *testing.T) {
	// 3x3 grid transpose: pe = r*3+c fetches from c*3+r.
	m := newTestMachine(t, 16, 9)
	data := make([]Bit, 9)
	src := make([]int32, 9)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			data[r*3+c] = Bit((r*3 + c) % 2)
			src[r*3+c] = int32(c*3 + r)
		}
	}
	got := m.RouterFetch(src, data)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			if got[r*3+c] != data[c*3+r] {
				t.Errorf("transpose (%d,%d) wrong", r, c)
			}
		}
	}
}

func TestCycleAccounting(t *testing.T) {
	m := newTestMachine(t, 1024, 2048) // 2 layers
	if m.Layers() != 2 {
		t.Fatalf("layers = %d", m.Layers())
	}
	c0 := m.Cycles
	m.All(func(pe int) {})
	oneAll := m.Cycles - c0
	if oneAll != DefaultCosts().Elemental*2 {
		t.Errorf("elemental charge = %d, want %d", oneAll, DefaultCosts().Elemental*2)
	}
	c0 = m.Cycles
	m.SegScanOr(make([]Bit, 2048), make([]bool, 2048))
	scanCharge := m.Cycles - c0
	wantScan := (DefaultCosts().ScanBase + DefaultCosts().ScanPerLevel*10) * 2 // log2(1024)=10
	if scanCharge != wantScan {
		t.Errorf("scan charge = %d, want %d", scanCharge, wantScan)
	}
	if m.ScanOps != 1 || m.Instr != 1 {
		t.Errorf("op counters: scans=%d instr=%d", m.ScanOps, m.Instr)
	}
}

func TestModelTime(t *testing.T) {
	m := newTestMachine(t, 16, 16)
	m.Cycles = uint64(ClockHz) // exactly one second of cycles
	if got := m.ModelTime().Seconds(); got < 0.999 || got > 1.001 {
		t.Errorf("ModelTime = %v, want ~1s", got)
	}
}

func TestAllRunsOnlyActive(t *testing.T) {
	m := newTestMachine(t, 16, 10)
	m.SetMask(func(pe int) bool { return pe%2 == 0 })
	hits := make([]Bit, 10)
	m.All(func(pe int) { hits[pe] = 1 })
	for pe, h := range hits {
		want := Bit(0)
		if pe%2 == 0 {
			want = 1
		}
		if h != want {
			t.Errorf("pe %d executed=%d, want %d", pe, h, want)
		}
	}
	m.EnableAll()
	m.All(func(pe int) { hits[pe] = 2 })
	for pe, h := range hits {
		if h != 2 {
			t.Errorf("pe %d after EnableAll: %d", pe, h)
		}
	}
}

// reference segment OR for the property test.
func refSegOr(data []Bit, head []bool, enabled []bool) []Bit {
	out := make([]Bit, len(data))
	var acc Bit
	open := false
	for i := range data {
		if !enabled[i] {
			continue
		}
		if head[i] || !open {
			acc = 0
			open = true
		}
		acc |= data[i]
		out[i] = acc
	}
	return out
}

func TestQuickSegScanOrMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		s := seed | 1
		rnd := func(n int) int {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			v := int(s % int64(n))
			if v < 0 {
				v = -v
			}
			return v
		}
		v := rnd(200) + 1
		m := newTestMachine(t, 64, v)
		data := make([]Bit, v)
		head := make([]bool, v)
		mask := make([]bool, v)
		for i := 0; i < v; i++ {
			data[i] = Bit(rnd(2))
			head[i] = rnd(4) == 0
			mask[i] = rnd(5) != 0
		}
		m.SetMask(func(pe int) bool { return mask[pe] })
		got := m.SegScanOr(data, head)
		want := refSegOr(data, head, mask)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickReduceConsistentWithScan: the last element of each segment's
// inclusive scan equals the head-deposited reduction.
func TestQuickReduceConsistentWithScan(t *testing.T) {
	f := func(seed int64) bool {
		s := seed | 1
		rnd := func(n int) int {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			v := int(s % int64(n))
			if v < 0 {
				v = -v
			}
			return v
		}
		v := rnd(100) + 1
		m := newTestMachine(t, 32, v)
		data := make([]Bit, v)
		head := make([]bool, v)
		for i := 0; i < v; i++ {
			data[i] = Bit(rnd(2))
			head[i] = rnd(3) == 0
		}
		head[0] = true
		scan := m.SegScanOr(data, head)
		reduced := m.SegReduceOrToHead(data, head)
		// Walk segments; compare the reduction at each head with the
		// scan value at the segment's last PE.
		lastOf := map[int]int{}
		curHead := -1
		for pe := 0; pe < v; pe++ {
			if head[pe] {
				curHead = pe
			}
			lastOf[curHead] = pe
		}
		for h, last := range lastOf {
			if reduced[h] != scan[last] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
