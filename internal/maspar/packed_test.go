package maspar

import (
	"fmt"
	"testing"

	"repro/internal/cdg"
	"repro/internal/cn"
	"repro/internal/grammars"
)

// splitmix64 — a tiny deterministic generator so every case in the
// packed-vs-reference property sweep is reproducible from the printed
// case label alone.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func isqrt(n int) int {
	s := 0
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}

func (r *rng) coin(pctTrue int) bool { return r.intn(100) < pctTrue }

var maskStyles = []string{"full", "empty", "half", "sparse", "single", "altwords"}

func buildMask(style string, v int, r *rng) []bool {
	mask := make([]bool, v)
	switch style {
	case "full":
		for i := range mask {
			mask[i] = true
		}
	case "empty":
	case "half":
		for i := range mask {
			mask[i] = r.coin(50)
		}
	case "sparse":
		for i := range mask {
			mask[i] = r.coin(10)
		}
	case "single":
		mask[r.intn(v)] = true
	case "altwords":
		// whole 64-PE words on/off, exercising full-word fast paths
		for i := range mask {
			mask[i] = (i>>6)&1 == 0
		}
	}
	return mask
}

var headStyles = []string{"none", "all", "random", "rare"}

func buildHeads(style string, v int, r *rng) []bool {
	heads := make([]bool, v)
	switch style {
	case "none":
	case "all": // every active PE is a single-PE segment
		for i := range heads {
			heads[i] = true
		}
	case "random":
		for i := range heads {
			heads[i] = r.coin(25)
		}
	case "rare":
		for i := range heads {
			heads[i] = r.coin(3)
		}
	}
	return heads
}

// TestPackedMatchesReferenceKernels is the refscan↔packed property
// sweep: for every size/mask/segment shape (including all-inactive
// masks and single-PE segments) each packed kernel must match the
// scalar reference bit-for-bit AND charge the same cycles, scan ops,
// router ops, and elemental instructions.
func TestPackedMatchesReferenceKernels(t *testing.T) {
	sizes := []int{1, 4, 63, 64, 65, 121, 128, 129, 256, 300, 517, 1024}
	for _, v := range sizes {
		for _, ms := range maskStyles {
			for _, hs := range headStyles {
				t.Run(fmt.Sprintf("v=%d/mask=%s/heads=%s", v, ms, hs), func(t *testing.T) {
					runPackedVsRef(t, v, ms, hs)
				})
			}
		}
	}
}

func runPackedVsRef(t *testing.T, v int, maskStyle, headStyle string) {
	t.Helper()
	r := &rng{s: uint64(v)*1000003 + uint64(len(maskStyle))*31 + uint64(len(headStyle))}
	ref, err := New(64, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	pk, err := New(64, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Setup(v); err != nil {
		t.Fatal(err)
	}
	if _, err := pk.Setup(v); err != nil {
		t.Fatal(err)
	}

	mask := buildMask(maskStyle, v, r)
	heads := buildHeads(headStyle, v, r)
	data := make([]Bit, v)
	for i := range data {
		if r.coin(50) {
			data[i] = 1
		}
	}
	src := make([]int32, v)
	for i := range src {
		src[i] = int32(r.intn(v))
	}

	pred := func(pe int) bool { return mask[pe] }
	ref.SetMask(pred)
	pk.SetMask(pred)

	dataV := pk.GetVec()
	headV := pk.GetVec()
	srcDataV := pk.GetVec()
	out := pk.GetVec()
	got := make([]Bit, v)
	PackBits(dataV, data)
	PackBools(headV, heads)

	check := func(name string, want []Bit) {
		t.Helper()
		UnpackBits(got, out)
		for pe := 0; pe < v; pe++ {
			if got[pe] != want[pe] {
				t.Fatalf("%s: PE %d: packed=%d ref=%d (v=%d mask=%s heads=%s)",
					name, pe, got[pe], want[pe], v, maskStyle, headStyle)
			}
		}
	}

	pk.SegScanOrV(out, dataV, headV)
	check("SegScanOr", ref.SegScanOr(data, heads))

	pk.SegScanAndV(out, dataV, headV)
	check("SegScanAnd", ref.SegScanAnd(data, heads))

	pk.CopySegHeadV(out, dataV, headV)
	check("CopySegHead", ref.CopySegHead(data, heads))

	pk.SegReduceOrToHeadV(out, dataV, headV)
	check("SegReduceOrToHead", ref.SegReduceOrToHead(data, heads))

	pk.SegReduceAndToHeadV(out, dataV, headV)
	check("SegReduceAndToHead", ref.SegReduceAndToHead(data, heads))

	if gotB, wantB := pk.ReduceOrV(dataV), ref.ReduceOr(data); gotB != wantB {
		t.Fatalf("ReduceOr: packed=%d ref=%d", gotB, wantB)
	}
	if gotB, wantB := pk.ReduceAndV(dataV), ref.ReduceAnd(data); gotB != wantB {
		t.Fatalf("ReduceAnd: packed=%d ref=%d", gotB, wantB)
	}

	PackBits(srcDataV, data)
	pk.RouterFetchV(out, src, srcDataV)
	check("RouterFetch", ref.RouterFetch(src, data))

	// Rotation src: maximal stride-1 runs, exercising the aligned
	// funnel-shift fast path (with one scattered word at the wrap).
	rot := make([]int32, v)
	k := r.intn(v)
	for i := range rot {
		rot[i] = int32((i + k) % v)
	}
	pk.RouterFetchV(out, rot, srcDataV)
	check("RouterFetchAligned", ref.RouterFetch(rot, data))

	// RouterCopyV is RouterFetch with the identity lane map.
	ident := make([]int32, v)
	for i := range ident {
		ident[i] = int32(i)
	}
	pk.RouterCopyV(out, srcDataV)
	check("RouterCopy", ref.RouterFetch(ident, data))

	// RouterTransposeV must match the per-lane gather along the s×s
	// transpose permutation whenever the array is a perfect grid.
	if s := isqrt(v); s*s == v {
		tsrc := make([]int32, v)
		for i := 0; i < s; i++ {
			for j := 0; j < s; j++ {
				tsrc[i*s+j] = int32(j*s + i)
			}
		}
		pk.RouterTransposeV(out, srcDataV, s)
		check("RouterTranspose", ref.RouterFetch(tsrc, data))
	}

	if ref.Cycles != pk.Cycles || ref.ScanOps != pk.ScanOps ||
		ref.RouterOps != pk.RouterOps || ref.Instr != pk.Instr {
		t.Fatalf("counter drift: ref{cycles=%d scans=%d routers=%d instr=%d} packed{cycles=%d scans=%d routers=%d instr=%d}",
			ref.Cycles, ref.ScanOps, ref.RouterOps, ref.Instr,
			pk.Cycles, pk.ScanOps, pk.RouterOps, pk.Instr)
	}
}

// TestPackedKernelsAtScale repeats the sweep at a realistic size with
// randomized shapes each round — a cheap fuzz of the carry chains
// across many word boundaries.
func TestPackedKernelsAtScale(t *testing.T) {
	r := &rng{s: 42}
	for round := 0; round < 8; round++ {
		v := 2000 + r.intn(3000)
		runPackedVsRef(t, v, maskStyles[r.intn(len(maskStyles))], headStyles[r.intn(len(headStyles))])
	}
	// Perfect grids at paper scale, including an s that is not a
	// multiple of 64, so the transpose tiling's edge handling is hit.
	runPackedVsRef(t, 16384, "full", "random") // s = 128
	runPackedVsRef(t, 16641, "half", "rare")   // s = 129
	runPackedVsRef(t, 10609, "sparse", "none") // s = 103
}

// TestSteadyStateScansDoNotAllocate is the allocation regression test
// from the issue: with vectors drawn from the arena once, the packed
// scan kernels and the recycled byte API must not allocate per call.
func TestSteadyStateScansDoNotAllocate(t *testing.T) {
	m, err := New(PhysicalPEs, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Setup(PhysicalPEs); err != nil {
		t.Fatal(err)
	}
	v := m.V()
	data := m.GetVec()
	head := m.GetVec()
	dst := m.GetVec()
	for w := range data {
		data[w] = 0xaaaa5555aaaa5555
		head[w] = 0x0000100000001000
	}

	if avg := testing.AllocsPerRun(20, func() {
		m.SegScanOrV(dst, data, head)
		m.SegScanAndV(dst, data, head)
		m.CopySegHeadV(dst, data, head)
		m.SegReduceOrToHeadV(dst, data, head)
		m.SegReduceAndToHeadV(dst, data, head)
		m.ReduceOrV(data)
		m.ReduceAndV(data)
	}); avg != 0 {
		t.Errorf("packed scan kernels allocate %v allocs/op in steady state, want 0", avg)
	}

	// The byte API draws results from the arena; recycling them makes
	// it allocation-free too.
	bdata := make([]Bit, v)
	bhead := make([]bool, v)
	m.PutBits(m.SegScanOr(bdata, bhead)) // warm the free-list
	if avg := testing.AllocsPerRun(20, func() {
		m.PutBits(m.SegScanOr(bdata, bhead))
		m.PutBits(m.SegReduceOrToHead(bdata, bhead))
		m.PutBits(m.CopySegHead(bdata, bhead))
	}); avg != 0 {
		t.Errorf("recycled byte-API scans allocate %v allocs/op in steady state, want 0", avg)
	}

	// The packed router gather is allocation-free on its sequential
	// path (small vectors); the parallel path costs a handful of
	// goroutine handoffs, which is the documented trade.
	sm, err := New(1024, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sm.Setup(1024); err != nil {
		t.Fatal(err)
	}
	sdata := sm.GetVec()
	sdst := sm.GetVec()
	ssrc := make([]int32, 1024)
	for i := range ssrc {
		ssrc[i] = int32((i * 7) % 1024)
	}
	if avg := testing.AllocsPerRun(20, func() {
		sm.RouterFetchV(sdst, ssrc, sdata)
	}); avg != 0 {
		t.Errorf("sequential packed RouterFetchV allocates %v allocs/op, want 0", avg)
	}

	// The compiled-eval propagation sweeps share the contract: once the
	// network's evaluation scratch is warm, re-running a parse's unary
	// and binary passes — bytecode span sweeps included — allocates
	// nothing. (The network is at fixpoint after the warm-up, so the
	// re-runs evaluate every constraint without changing state.)
	g := grammars.PaperDemo()
	sent, err := cdg.Resolve(g, grammars.PaperSentence(), nil)
	if err != nil {
		t.Fatal(err)
	}
	nw := cn.New(cdg.NewSpace(g, sent))
	for _, c := range g.Unary() {
		nw.ApplyUnary(c)
	}
	nw.ApplyBinaryAll(g.Binary())
	if avg := testing.AllocsPerRun(20, func() {
		for _, c := range g.Unary() {
			nw.ApplyUnary(c)
		}
		for _, c := range g.Binary() {
			nw.ApplyBinary(c)
		}
		nw.ApplyBinaryAll(g.Binary())
	}); avg != 0 {
		t.Errorf("compiled-eval propagation sweeps allocate %v allocs/op in steady state, want 0", avg)
	}
}

// TestArenaReuseAcrossSetup pins the invalidation contract: buffers
// from before a Setup must not be handed out again after it.
func TestArenaReuseAcrossSetup(t *testing.T) {
	m, err := New(64, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Setup(128); err != nil {
		t.Fatal(err)
	}
	old := m.GetVec()
	if _, err := m.Setup(256); err != nil {
		t.Fatal(err)
	}
	m.PutVec(old) // stale size: must be dropped, not recycled
	if got := m.GetVec(); len(got) != m.WordLen() {
		t.Fatalf("arena handed out stale buffer of %d words, want %d", len(got), m.WordLen())
	}
	b := m.GetBits()
	for i := range b {
		b[i] = 7
	}
	m.PutBits(b)
	b2 := m.GetBits()
	for i, x := range b2 {
		if x != 0 {
			t.Fatalf("GetBits returned dirty buffer at %d (=%d)", i, x)
		}
	}
}
