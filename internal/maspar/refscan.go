package maspar

// Reference scalar kernels ("refscan"): segmented scans (scanOr /
// scanAnd, MasPar System Overview 1990), the copy-scan broadcast idiom,
// global reductions, and router gathers — one PE per host iteration
// over byte-per-PE plural vectors. All operate over the *active* PE set
// — disabled PEs neither contribute nor receive, exactly like Figure
// 12's "PE disabled only during the scanAnd".
//
// Segments are defined over the sequence of active PEs: a new segment
// begins at every active PE whose segHead bit is set, and the first
// active PE always begins one. Each primitive costs one router pass,
// O(log P) cycle-depth, regardless of segment structure.
//
// These scalar loops are the executable specification for the packed
// word-parallel kernels in packed.go; the property tests in
// packed_test.go assert both agree bit-for-bit (outputs, cycle counts,
// scan-op counts) on random masks and segment structures. Result
// buffers come from the Machine's arena — recycle them with PutBits to
// make this API allocation-free in steady state.

// Bit is the plural bit type flowing through the scan network.
type Bit = uint8

// SegScanOr performs an inclusive, segmented OR-scan: each active PE
// receives the OR of its segment's values up to and including itself.
// Inactive PEs keep a zero result.
//
//parsec:noalloc
func (m *Machine) SegScanOr(data []Bit, segHead []bool) []Bit {
	m.chargeScan()
	out := m.buf.getBytes()
	var acc Bit
	open := false
	for pe := 0; pe < m.v; pe++ {
		if !m.Enabled(pe) {
			continue
		}
		if segHead[pe] || !open {
			acc = 0
			open = true
		}
		acc |= data[pe]
		out[pe] = acc
	}
	return out
}

// SegScanAnd is the AND counterpart of SegScanOr.
func (m *Machine) SegScanAnd(data []Bit, segHead []bool) []Bit {
	m.chargeScan()
	out := m.buf.getBytes()
	acc := Bit(1)
	open := false
	for pe := 0; pe < m.v; pe++ {
		if !m.Enabled(pe) {
			continue
		}
		if segHead[pe] || !open {
			acc = 1
			open = true
		}
		acc &= data[pe]
		out[pe] = acc
	}
	return out
}

// SegReduceOrToHead ORs each segment and deposits the result on the
// segment's head PE (zero elsewhere). On the real machine this is a
// backward scanOr read off at the boundary PEs; it costs one scan.
//
//parsec:noalloc
func (m *Machine) SegReduceOrToHead(data []Bit, segHead []bool) []Bit {
	m.chargeScan()
	out := m.buf.getBytes()
	head := -1
	var acc Bit
	//lint:allow allocfree (non-escaping closure: stack-allocated, AllocsPerRun==0 pins it)
	flush := func() {
		if head >= 0 {
			out[head] = acc
		}
	}
	for pe := 0; pe < m.v; pe++ {
		if !m.Enabled(pe) {
			continue
		}
		if segHead[pe] || head < 0 {
			flush()
			head = pe
			acc = 0
		}
		acc |= data[pe]
	}
	flush()
	return out
}

// SegReduceAndToHead ANDs each segment to its head PE (zero elsewhere,
// including inactive heads' positions).
func (m *Machine) SegReduceAndToHead(data []Bit, segHead []bool) []Bit {
	m.chargeScan()
	out := m.buf.getBytes()
	head := -1
	acc := Bit(1)
	flush := func() {
		if head >= 0 {
			out[head] = acc
		}
	}
	for pe := 0; pe < m.v; pe++ {
		if !m.Enabled(pe) {
			continue
		}
		if segHead[pe] || head < 0 {
			flush()
			head = pe
			acc = 1
		}
		acc &= data[pe]
	}
	flush()
	return out
}

// CopySegHead broadcasts each segment head's value to every active PE of
// its segment (the copy-scan idiom used to distribute consistency
// verdicts back across a column block).
//
//parsec:noalloc
func (m *Machine) CopySegHead(data []Bit, segHead []bool) []Bit {
	m.chargeScan()
	out := m.buf.getBytes()
	var cur Bit
	open := false
	for pe := 0; pe < m.v; pe++ {
		if !m.Enabled(pe) {
			continue
		}
		if segHead[pe] || !open {
			cur = data[pe]
			open = true
		}
		out[pe] = cur
	}
	return out
}

// ReduceOr returns the global OR over all active PEs (delivered to the
// ACU, e.g. the "did anything change this round?" test).
func (m *Machine) ReduceOr(data []Bit) Bit {
	m.chargeScan()
	var acc Bit
	for pe := 0; pe < m.v; pe++ {
		if m.Enabled(pe) {
			acc |= data[pe]
		}
	}
	return acc
}

// ReduceAnd returns the global AND over all active PEs (1 if no active
// PEs).
func (m *Machine) ReduceAnd(data []Bit) Bit {
	m.chargeScan()
	acc := Bit(1)
	for pe := 0; pe < m.v; pe++ {
		if m.Enabled(pe) {
			acc &= data[pe]
		}
	}
	return acc
}

// RouterFetch gathers through the global router: every active PE pe
// receives data[src[pe]]. src indices address the full virtual array
// (the transpose permutation of the PARSEC layout is the main user).
// One router pass.
func (m *Machine) RouterFetch(src []int32, data []Bit) []Bit {
	m.chargeRouter()
	out := m.buf.getBytes()
	m.forAll(func(pe int) {
		if m.Enabled(pe) {
			out[pe] = data[src[pe]]
		}
	})
	return out
}
