// Package sexpr implements a small, strict s-expression reader and
// printer. It is the concrete syntax for the CDG constraint language
// (section 1.3 of Helzerman & Harper 1992) and for grammar files.
//
// The data model is deliberately tiny: a Node is either an Atom
// (symbol, integer, or string literal) or a List of Nodes. Atoms keep
// their source position so that the constraint compiler can report
// errors pointing at the offending token.
package sexpr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Kind discriminates the variants of a Node.
type Kind int

const (
	// KList is a parenthesized list of nodes.
	KList Kind = iota
	// KSymbol is a bare identifier such as `eq` or `SUBJ`.
	KSymbol
	// KInt is an integer literal.
	KInt
	// KString is a double-quoted string literal.
	KString
)

func (k Kind) String() string {
	switch k {
	case KList:
		return "list"
	case KSymbol:
		return "symbol"
	case KInt:
		return "int"
	case KString:
		return "string"
	}
	return "unknown"
}

// Pos is a line/column source position (1-based).
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Node is one s-expression: an atom or a list.
type Node struct {
	Kind Kind
	// Sym holds the text of a KSymbol.
	Sym string
	// Int holds the value of a KInt.
	Int int64
	// Str holds the decoded value of a KString.
	Str string
	// List holds children of a KList.
	List []*Node
	// Pos is where the node started in the source.
	Pos Pos
}

// IsSym reports whether n is the symbol s (case-sensitive).
func (n *Node) IsSym(s string) bool {
	return n != nil && n.Kind == KSymbol && n.Sym == s
}

// Head returns the leading symbol of a list node, or "" if n is not a
// list whose first element is a symbol.
func (n *Node) Head() string {
	if n == nil || n.Kind != KList || len(n.List) == 0 {
		return ""
	}
	if h := n.List[0]; h.Kind == KSymbol {
		return h.Sym
	}
	return ""
}

// Args returns the elements of a list node after the head.
func (n *Node) Args() []*Node {
	if n == nil || n.Kind != KList || len(n.List) == 0 {
		return nil
	}
	return n.List[1:]
}

// String renders the node back to s-expression syntax.
func (n *Node) String() string {
	var b strings.Builder
	n.write(&b)
	return b.String()
}

func (n *Node) write(b *strings.Builder) {
	if n == nil {
		b.WriteString("()")
		return
	}
	switch n.Kind {
	case KSymbol:
		b.WriteString(n.Sym)
	case KInt:
		b.WriteString(strconv.FormatInt(n.Int, 10))
	case KString:
		b.WriteString(strconv.Quote(n.Str))
	case KList:
		b.WriteByte('(')
		for i, c := range n.List {
			if i > 0 {
				b.WriteByte(' ')
			}
			c.write(b)
		}
		b.WriteByte(')')
	}
}

// Error is a reader error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("sexpr: %s: %s", e.Pos, e.Msg) }

func errAt(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// reader is the scanner/parser state.
type reader struct {
	src  string
	off  int
	line int
	col  int
}

// Parse reads exactly one s-expression from src; trailing content other
// than whitespace and comments is an error.
func Parse(src string) (*Node, error) {
	nodes, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(nodes) != 1 {
		return nil, errAt(Pos{1, 1}, "expected exactly one expression, got %d", len(nodes))
	}
	return nodes[0], nil
}

// ParseAll reads every s-expression in src. Comments run from ';' to end
// of line.
func ParseAll(src string) ([]*Node, error) {
	r := &reader{src: src, line: 1, col: 1}
	var out []*Node
	for {
		r.skipSpace()
		if r.eof() {
			return out, nil
		}
		n, err := r.readNode()
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
}

func (r *reader) eof() bool { return r.off >= len(r.src) }

func (r *reader) peek() byte { return r.src[r.off] }

func (r *reader) advance() byte {
	c := r.src[r.off]
	r.off++
	if c == '\n' {
		r.line++
		r.col = 1
	} else {
		r.col++
	}
	return c
}

func (r *reader) pos() Pos { return Pos{Line: r.line, Col: r.col} }

func (r *reader) skipSpace() {
	for !r.eof() {
		c := r.peek()
		switch {
		case c == ';':
			for !r.eof() && r.peek() != '\n' {
				r.advance()
			}
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v':
			r.advance()
		default:
			return
		}
	}
}

func (r *reader) readNode() (*Node, error) {
	r.skipSpace()
	if r.eof() {
		return nil, errAt(r.pos(), "unexpected end of input")
	}
	start := r.pos()
	switch c := r.peek(); {
	case c == '(':
		r.advance()
		node := &Node{Kind: KList, Pos: start}
		for {
			r.skipSpace()
			if r.eof() {
				return nil, errAt(start, "unterminated list")
			}
			if r.peek() == ')' {
				r.advance()
				return node, nil
			}
			child, err := r.readNode()
			if err != nil {
				return nil, err
			}
			node.List = append(node.List, child)
		}
	case c == ')':
		return nil, errAt(start, "unexpected ')'")
	case c == '"':
		return r.readString(start)
	default:
		return r.readAtom(start)
	}
}

func (r *reader) readString(start Pos) (*Node, error) {
	r.advance() // opening quote
	var b strings.Builder
	for {
		if r.eof() {
			return nil, errAt(start, "unterminated string literal")
		}
		c := r.advance()
		switch c {
		case '"':
			return &Node{Kind: KString, Str: b.String(), Pos: start}, nil
		case '\\':
			if r.eof() {
				return nil, errAt(start, "unterminated escape in string literal")
			}
			e := r.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"', '\\':
				b.WriteByte(e)
			default:
				return nil, errAt(start, "unknown escape \\%c", e)
			}
		case '\n':
			return nil, errAt(start, "newline in string literal")
		default:
			b.WriteByte(c)
		}
	}
}

func isAtomChar(c byte) bool {
	switch c {
	case '(', ')', '"', ';', ' ', '\t', '\n', '\r', '\f', '\v':
		return false
	}
	return true
}

func (r *reader) readAtom(start Pos) (*Node, error) {
	var b strings.Builder
	for !r.eof() && isAtomChar(r.peek()) {
		b.WriteByte(r.advance())
	}
	text := b.String()
	if text == "" {
		return nil, errAt(start, "empty atom")
	}
	if looksNumeric(text) {
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, errAt(start, "bad integer literal %q", text)
		}
		return &Node{Kind: KInt, Int: v, Pos: start}, nil
	}
	return &Node{Kind: KSymbol, Sym: text, Pos: start}, nil
}

// looksNumeric reports whether text should be parsed as an integer: an
// optional sign followed by at least one digit, all digits thereafter.
func looksNumeric(text string) bool {
	s := text
	if len(s) > 1 && (s[0] == '-' || s[0] == '+') {
		s = s[1:]
	}
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}

// Sym constructs a symbol node (convenience for tests and builders).
func Sym(s string) *Node { return &Node{Kind: KSymbol, Sym: s} }

// Int constructs an integer node.
func Int(v int64) *Node { return &Node{Kind: KInt, Int: v} }

// Str constructs a string node.
func Str(s string) *Node { return &Node{Kind: KString, Str: s} }

// L constructs a list node from children.
func L(children ...*Node) *Node { return &Node{Kind: KList, List: children} }

// Equal reports structural equality of two nodes, ignoring positions.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KSymbol:
		return a.Sym == b.Sym
	case KInt:
		return a.Int == b.Int
	case KString:
		return a.Str == b.Str
	case KList:
		if len(a.List) != len(b.List) {
			return false
		}
		for i := range a.List {
			if !Equal(a.List[i], b.List[i]) {
				return false
			}
		}
		return true
	}
	return false
}
