package sexpr

import "strings"

// Pretty renders a node with indentation: lists whose flat rendering
// fits in width characters stay on one line; longer lists break after
// the head with children indented two spaces. WriteGrammar uses this to
// keep generated constraint bodies readable.
func Pretty(n *Node, width int) string {
	var b strings.Builder
	pretty(&b, n, 0, width)
	return b.String()
}

func pretty(b *strings.Builder, n *Node, indent, width int) {
	flat := n.String()
	if len(flat)+indent <= width || n == nil || n.Kind != KList || len(n.List) < 2 {
		b.WriteString(flat)
		return
	}
	b.WriteByte('(')
	// Head (plus a second atom when the form reads like an operator
	// application, e.g. "(if ", "(eq ") stays on the opening line.
	pretty(b, n.List[0], indent+1, width)
	rest := n.List[1:]
	childIndent := indent + 2
	for _, c := range rest {
		b.WriteByte('\n')
		b.WriteString(strings.Repeat(" ", childIndent))
		pretty(b, c, childIndent, width)
	}
	b.WriteByte(')')
}
