package sexpr

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPrettyShortStaysFlat(t *testing.T) {
	n := mustParse(t, "(eq (lab x) SUBJ)")
	out := Pretty(n, 80)
	if strings.Contains(out, "\n") {
		t.Errorf("short form should stay flat: %q", out)
	}
}

func TestPrettyLongBreaks(t *testing.T) {
	n := mustParse(t, `(if (and (eq (cat (word (pos x))) verb) (eq (role x) governor))
	                       (and (eq (lab x) ROOT) (eq (mod x) nil)))`)
	out := Pretty(n, 40)
	if !strings.Contains(out, "\n") {
		t.Errorf("long form should break: %q", out)
	}
	// Indented children.
	if !strings.Contains(out, "\n  (") {
		t.Errorf("children should be indented:\n%s", out)
	}
}

// TestQuickPrettyRoundTrips: pretty output re-parses to the same tree.
func TestQuickPrettyRoundTrips(t *testing.T) {
	f := func(seed int64, width uint8) bool {
		s := seed | 1
		rnd := func(n int) int {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			v := int(s % int64(n))
			if v < 0 {
				v = -v
			}
			return v
		}
		n := genNode(rnd, 4)
		w := int(width%60) + 10
		out := Pretty(n, w)
		back, err := Parse(out)
		if err != nil {
			t.Logf("pretty output unparseable (%v):\n%s", err, out)
			return false
		}
		return Equal(n, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
