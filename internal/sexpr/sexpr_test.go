package sexpr

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, src string) *Node {
	t.Helper()
	n, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return n
}

func TestParseSymbol(t *testing.T) {
	n := mustParse(t, "ROOT-nil")
	if n.Kind != KSymbol || n.Sym != "ROOT-nil" {
		t.Fatalf("got %v %q", n.Kind, n.Sym)
	}
}

func TestParseInt(t *testing.T) {
	for _, tc := range []struct {
		src  string
		want int64
	}{{"0", 0}, {"42", 42}, {"-7", -7}, {"+9", 9}} {
		n := mustParse(t, tc.src)
		if n.Kind != KInt || n.Int != tc.want {
			t.Errorf("Parse(%q) = %v %d, want int %d", tc.src, n.Kind, n.Int, tc.want)
		}
	}
}

func TestSignAloneIsSymbol(t *testing.T) {
	n := mustParse(t, "-")
	if n.Kind != KSymbol || n.Sym != "-" {
		t.Fatalf("bare '-' should be a symbol, got %v %q", n.Kind, n.Sym)
	}
}

func TestParseString(t *testing.T) {
	n := mustParse(t, `"hello\n\"world\""`)
	if n.Kind != KString || n.Str != "hello\n\"world\"" {
		t.Fatalf("got %v %q", n.Kind, n.Str)
	}
}

func TestParseNestedList(t *testing.T) {
	n := mustParse(t, "(if (and (eq (lab x) SUBJ) (eq (lab y) ROOT)) (lt (pos x) (pos y)))")
	if n.Kind != KList || n.Head() != "if" {
		t.Fatalf("head = %q", n.Head())
	}
	if len(n.Args()) != 2 {
		t.Fatalf("args = %d, want 2", len(n.Args()))
	}
	ante := n.Args()[0]
	if ante.Head() != "and" {
		t.Fatalf("antecedent head = %q", ante.Head())
	}
}

func TestParseEmptyList(t *testing.T) {
	n := mustParse(t, "()")
	if n.Kind != KList || len(n.List) != 0 {
		t.Fatalf("got %v with %d children", n.Kind, len(n.List))
	}
	if n.Head() != "" {
		t.Fatalf("empty list head should be empty, got %q", n.Head())
	}
}

func TestComments(t *testing.T) {
	src := `
; leading comment
(a b ; trailing comment
 c)
`
	n := mustParse(t, src)
	if len(n.List) != 3 {
		t.Fatalf("comment handling broke list: %v", n)
	}
}

func TestParseAllMultiple(t *testing.T) {
	nodes, err := ParseAll("(a) b 12 \"s\"")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 4 {
		t.Fatalf("got %d nodes", len(nodes))
	}
	kinds := []Kind{KList, KSymbol, KInt, KString}
	for i, k := range kinds {
		if nodes[i].Kind != k {
			t.Errorf("node %d kind = %v, want %v", i, nodes[i].Kind, k)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"(",
		")",
		"(a (b)",
		`"unterminated`,
		"(a) (b)", // Parse wants exactly one
		"",
		`"bad \q escape"`,
		"\"line\nbreak\"",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestErrorPosition(t *testing.T) {
	_, err := ParseAll("(a\n  b\n  )) ")
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Pos.Line != 3 {
		t.Errorf("error line = %d, want 3", se.Pos.Line)
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"(if (and (eq (lab x) SUBJ)) (eq (mod x) nil))",
		"(a -12 \"str with \\\"quote\\\"\" (nested ()))",
		"sym",
	}
	for _, src := range srcs {
		n := mustParse(t, src)
		again := mustParse(t, n.String())
		if !Equal(n, again) {
			t.Errorf("round trip changed %q -> %q", src, n.String())
		}
	}
}

func TestEqual(t *testing.T) {
	a := L(Sym("eq"), Sym("x"), Int(3))
	b := L(Sym("eq"), Sym("x"), Int(3))
	c := L(Sym("eq"), Sym("x"), Int(4))
	if !Equal(a, b) {
		t.Error("a should equal b")
	}
	if Equal(a, c) {
		t.Error("a should not equal c")
	}
	if Equal(a, nil) || !Equal(nil, nil) {
		t.Error("nil handling wrong")
	}
	if Equal(Sym("x"), Str("x")) {
		t.Error("symbol vs string should differ")
	}
}

func TestIsSymAndArgs(t *testing.T) {
	n := mustParse(t, "(head a b)")
	if !n.List[0].IsSym("head") {
		t.Error("IsSym failed")
	}
	if n.List[0].IsSym("other") {
		t.Error("IsSym matched wrong symbol")
	}
	if got := len(n.Args()); got != 2 {
		t.Errorf("Args len = %d", got)
	}
	var nilNode *Node
	if nilNode.IsSym("x") || nilNode.Head() != "" || nilNode.Args() != nil {
		t.Error("nil node accessors should be safe")
	}
}

// genNode builds a random node for property tests (bounded depth).
func genNode(rnd func(int) int, depth int) *Node {
	if depth <= 0 || rnd(3) == 0 {
		switch rnd(3) {
		case 0:
			syms := []string{"a", "eq", "SUBJ-1", "ROOT-nil", "x", "governor", "w0rd"}
			return Sym(syms[rnd(len(syms))])
		case 1:
			return Int(int64(rnd(2000) - 1000))
		default:
			strs := []string{"", "hello", "with \"quotes\"", "tab\there", "line\\slash"}
			return Str(strs[rnd(len(strs))])
		}
	}
	k := rnd(4)
	ch := make([]*Node, k)
	for i := range ch {
		ch[i] = genNode(rnd, depth-1)
	}
	return L(ch...)
}

func TestQuickPrintParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		s := seed
		rnd := func(n int) int {
			// xorshift-style deterministic generator from the seed.
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			v := int(s % int64(n))
			if v < 0 {
				v = -v
			}
			return v
		}
		n := genNode(rnd, 4)
		got, err := Parse(n.String())
		if err != nil {
			t.Logf("parse of %q failed: %v", n.String(), err)
			return false
		}
		return Equal(n, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDeepNesting(t *testing.T) {
	depth := 2000
	src := strings.Repeat("(a ", depth) + "b" + strings.Repeat(")", depth)
	n, err := Parse(src)
	if err != nil {
		t.Fatalf("deep nesting: %v", err)
	}
	// walk down to make sure structure is intact
	cur := n
	for i := 0; i < depth-1; i++ {
		if cur.Kind != KList || len(cur.List) != 2 {
			t.Fatalf("level %d malformed", i)
		}
		cur = cur.List[1]
	}
}
