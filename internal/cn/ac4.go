package cn

// Support-counted filtering (AC-4 style, Mohr & Henderson 1986). The
// paper's filtering repeats full consistency-maintenance passes until
// quiescence — AC-1 style, O(passes · n⁴) work, and the passes can
// cascade Θ(n) deep (§2.1, experiment E5). Maintaining per-(role value,
// incident arc) support counters instead makes each elimination charge
// only the entries it actually invalidates, giving an O(n⁴) total bound
// independent of cascade depth.
//
// This is an *extension* beyond the paper (their serial baseline is the
// AC-1 formulation, which we keep as Filter); FilterAC4 computes the
// identical fixpoint — enforced by differential tests — and experiment
// E8 quantifies the work gap on the adversarial chain grammar.

// FilterAC4 runs consistency maintenance to fixpoint using support
// counters and returns the number of role values eliminated.
func (nw *Network) FilterAC4() int {
	sp := nw.sp
	total := sp.NumRoles()
	maxRV := sp.MaxRVCount()

	// counts[(gr*maxRV+idx)*total+other] = number of 1s supporting
	// (gr, idx) on the arc to `other`.
	counts := make([]int32, total*maxRV*total)
	at := func(gr, idx, other int) int { return (gr*maxRV+idx)*total + other }

	type victim struct{ gr, idx int }
	var queue []victim

	// Initialize counters from the matrices; anything alive with an
	// empty row/column is seeded for elimination.
	for _, arc := range nw.arcs {
		for i := 0; i < arc.M.Rows(); i++ {
			c := int32(arc.M.RowCount(i))
			counts[at(arc.A, i, arc.B)] = c
			nw.Counters.SupportChecks++
		}
		// Column counts via one pass over the rows.
		for i := 0; i < arc.M.Rows(); i++ {
			arc.M.RowForEach(i, func(j int) {
				counts[at(arc.B, j, arc.A)]++
			})
		}
		for j := 0; j < arc.M.Cols(); j++ {
			nw.Counters.SupportChecks++
		}
	}
	for gr := 0; gr < total; gr++ {
		nw.domains[gr].ForEach(func(idx int) {
			for other := 0; other < total; other++ {
				if other != gr && counts[at(gr, idx, other)] == 0 {
					queue = append(queue, victim{gr, idx})
					return
				}
			}
		})
	}

	eliminated := 0
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if !nw.domains[v.gr].Get(v.idx) {
			continue
		}
		// Decrement the supports this value was providing, before its
		// rows/columns are zeroed.
		for other := 0; other < total; other++ {
			if other == v.gr {
				continue
			}
			arc, isRow := nw.ArcBetween(v.gr, other)
			if isRow {
				arc.M.RowForEach(v.idx, func(j int) {
					k := at(other, j, v.gr)
					counts[k]--
					if counts[k] == 0 && nw.domains[other].Get(j) {
						queue = append(queue, victim{other, j})
					}
				})
			} else {
				// Walk the column: the matrix is row-major, so this
				// costs one pass over the rows.
				for i := 0; i < arc.M.Rows(); i++ {
					if arc.M.Get(i, v.idx) {
						k := at(other, i, v.gr)
						counts[k]--
						if counts[k] == 0 && nw.domains[other].Get(i) {
							queue = append(queue, victim{other, i})
						}
					}
				}
			}
		}
		nw.Eliminate(v.gr, v.idx)
		eliminated++
	}
	return eliminated
}
