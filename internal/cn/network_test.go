package cn

import (
	"context"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cdg"
)

// testGrammar builds a compact grammar exercising the network
// machinery: 2 roles, 2-3 labels each.
func testGrammar(t *testing.T) *cdg.Grammar {
	t.Helper()
	b := cdg.NewBuilder().
		Labels("H", "D", "Z").
		Categories("w", "v").
		Role("g", "H", "D").
		Role("n", "Z").
		Word("w", "w").
		Word("v", "v")
	// v-words are heads (H-nil); w-words are dependents (D pointing at
	// some word).
	b.Constraint("v-head", `
		(if (and (eq (cat (word (pos x))) v) (eq (role x) g))
		    (and (eq (lab x) H) (eq (mod x) nil)))`)
	b.Constraint("w-dep", `
		(if (and (eq (cat (word (pos x))) w) (eq (role x) g))
		    (and (eq (lab x) D) (not (eq (mod x) nil))))`)
	b.Constraint("n-z", `
		(if (eq (role x) n)
		    (and (eq (lab x) Z) (eq (mod x) nil)))`)
	b.Constraint("dep-targets-head", `
		(if (and (eq (lab x) D) (eq (role y) g) (eq (mod x) (pos y)))
		    (eq (lab y) H))`)
	return b.MustBuild()
}

func buildNetwork(t *testing.T, g *cdg.Grammar, words ...string) *Network {
	t.Helper()
	sent, err := cdg.Resolve(g, words, nil)
	if err != nil {
		t.Fatal(err)
	}
	return New(cdg.NewSpace(g, sent))
}

func TestNewInitialState(t *testing.T) {
	g := testGrammar(t)
	nw := buildNetwork(t, g, "w", "v")
	sp := nw.Space()
	if len(nw.Arcs()) != sp.NumArcs() {
		t.Errorf("arcs = %d, want %d", len(nw.Arcs()), sp.NumArcs())
	}
	// Initial domains exclude self-modification only.
	gRole, _ := g.RoleByName("g")
	dom := nw.Domain(sp.GlobalRole(1, gRole))
	// 2 labels × 3 mods (nil,2 — not 1) → indices with mod != 1.
	if dom.Count() != 2*2 {
		t.Errorf("initial domain = %d, want 4: %v", dom.Count(), nw.DomainStrings(sp.GlobalRole(1, gRole)))
	}
	// All live pairs start compatible.
	for _, arc := range nw.Arcs() {
		nw.Domain(arc.A).ForEach(func(i int) {
			nw.Domain(arc.B).ForEach(func(j int) {
				if !arc.M.Get(i, j) {
					t.Fatalf("initial matrix has a 0 at live pair (%d,%d)", i, j)
				}
			})
		})
	}
}

func TestEliminateZeroesRowsAndCols(t *testing.T) {
	g := testGrammar(t)
	nw := buildNetwork(t, g, "w", "v")
	sp := nw.Space()
	gRole, _ := g.RoleByName("g")
	gr := sp.GlobalRole(1, gRole)
	victim := nw.Domain(gr).Ones()[0]
	nw.Eliminate(gr, victim)
	if nw.Domain(gr).Get(victim) {
		t.Fatal("domain bit survived")
	}
	for other := 0; other < sp.NumRoles(); other++ {
		if other == gr {
			continue
		}
		arc, isRow := nw.ArcBetween(gr, other)
		if isRow {
			if arc.M.RowAny(victim) {
				t.Error("row not zeroed")
			}
		} else if arc.M.ColAny(victim) {
			t.Error("col not zeroed")
		}
	}
	// Idempotent.
	before := nw.Counters.Eliminations
	nw.Eliminate(gr, victim)
	if nw.Counters.Eliminations != before {
		t.Error("double elimination counted twice")
	}
}

func TestArcBetweenPanicsOnSelf(t *testing.T) {
	g := testGrammar(t)
	nw := buildNetwork(t, g, "w", "v")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on self arc")
		}
	}()
	nw.ArcBetween(1, 1)
}

func TestApplyUnaryPanicsOnBinary(t *testing.T) {
	g := testGrammar(t)
	nw := buildNetwork(t, g, "w", "v")
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	nw.ApplyUnary(g.Binary()[0])
}

func TestApplyBinaryPanicsOnUnary(t *testing.T) {
	g := testGrammar(t)
	nw := buildNetwork(t, g, "w", "v")
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	nw.ApplyBinary(g.Unary()[0])
}

func TestPipelineOnTestGrammar(t *testing.T) {
	g := testGrammar(t)
	nw := buildNetwork(t, g, "w", "v", "w")
	for _, c := range g.Unary() {
		nw.ApplyUnary(c)
	}
	for _, c := range g.Binary() {
		nw.ApplyBinary(c)
		nw.ConsistencyPass()
	}
	nw.Filter(0)
	if !nw.AllRolesAlive() {
		t.Fatal("network should be accepted")
	}
	// Both w words must point at the single head v@2.
	sp := nw.Space()
	gRole, _ := g.RoleByName("g")
	for _, pos := range []int{1, 3} {
		vals := nw.DomainStrings(sp.GlobalRole(pos, gRole))
		if len(vals) != 1 || vals[0] != "D-2" {
			t.Errorf("pos %d domain = %v, want [D-2]", pos, vals)
		}
	}
	parses := nw.ExtractParses(0)
	if len(parses) != 1 {
		t.Fatalf("parses = %d", len(parses))
	}
	if !parses[0].Satisfies(g) {
		t.Error("parse violates constraints")
	}
	edges := parses[0].Edges()
	if len(edges) != 2 {
		t.Errorf("edges = %v", edges)
	}
}

func TestRejectionEmptiesARole(t *testing.T) {
	g := testGrammar(t)
	// No head at all: both words are dependents.
	nw := buildNetwork(t, g, "w", "w")
	for _, c := range g.Unary() {
		nw.ApplyUnary(c)
	}
	for _, c := range g.Binary() {
		nw.ApplyBinary(c)
		nw.ConsistencyPass()
	}
	nw.Filter(0)
	if nw.AllRolesAlive() {
		t.Error("w w should be rejected")
	}
	if nw.HasParse() {
		t.Error("no parse should exist")
	}
	if nw.ExtractParses(0) != nil {
		t.Error("extraction should return nothing")
	}
}

func TestMonotonicity(t *testing.T) {
	// Propagation only ever shrinks domains (a quick property over the
	// pipeline stages).
	g := testGrammar(t)
	nw := buildNetwork(t, g, "w", "v", "w")
	snapshot := func() []int {
		var out []int
		for gr := 0; gr < nw.Space().NumRoles(); gr++ {
			out = append(out, nw.Domain(gr).Count())
		}
		return out
	}
	prev := snapshot()
	step := func(name string) {
		cur := snapshot()
		for i := range cur {
			if cur[i] > prev[i] {
				t.Fatalf("%s grew domain %d: %d -> %d", name, i, prev[i], cur[i])
			}
		}
		prev = cur
	}
	for _, c := range g.Unary() {
		nw.ApplyUnary(c)
		step("unary " + c.Name)
	}
	for _, c := range g.Binary() {
		nw.ApplyBinary(c)
		step("binary " + c.Name)
		nw.ConsistencyPass()
		step("consistency")
	}
	nw.Filter(0)
	step("filter")
}

func TestFilterIdempotent(t *testing.T) {
	g := testGrammar(t)
	nw := buildNetwork(t, g, "w", "v", "w")
	for _, c := range g.Unary() {
		nw.ApplyUnary(c)
	}
	for _, c := range g.Binary() {
		nw.ApplyBinary(c)
	}
	nw.Filter(0)
	before := nw.Clone()
	// A second filtering pass must change nothing.
	passes := nw.Filter(0)
	if passes != 1 {
		t.Errorf("re-filter took %d passes, want 1 (no-op)", passes)
	}
	if !nw.EqualState(before) {
		t.Error("filter not idempotent")
	}
}

func TestFilterBounded(t *testing.T) {
	g := testGrammar(t)
	nw := buildNetwork(t, g, "w", "w", "w")
	for _, c := range g.Unary() {
		nw.ApplyUnary(c)
	}
	for _, c := range g.Binary() {
		nw.ApplyBinary(c)
	}
	if got := nw.Filter(2); got > 2 {
		t.Errorf("bounded filter ran %d passes", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := testGrammar(t)
	nw := buildNetwork(t, g, "w", "v")
	c := nw.Clone()
	if !nw.EqualState(c) {
		t.Fatal("clone differs")
	}
	gr := 0
	idx := nw.Domain(gr).Ones()[0]
	nw.Eliminate(gr, idx)
	if nw.EqualState(c) {
		t.Error("mutation leaked into clone")
	}
}

func TestNewShellEmpty(t *testing.T) {
	g := testGrammar(t)
	sent, _ := cdg.Resolve(g, []string{"w", "v"}, nil)
	sp := cdg.NewSpace(g, sent)
	shell := NewShell(sp)
	if shell.AllRolesAlive() {
		t.Error("shell domains should be empty")
	}
	if len(shell.Arcs()) != sp.NumArcs() {
		t.Error("shell arcs missing")
	}
	for _, a := range shell.Arcs() {
		if a.M.Count() != 0 {
			t.Error("shell matrix not zero")
		}
	}
}

func TestRenderContainsDomains(t *testing.T) {
	g := testGrammar(t)
	nw := buildNetwork(t, g, "w", "v")
	out := nw.Render()
	for _, want := range []string{"w/1", "v/2", "g:", "n:", "H-nil", "Z-nil"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	arcOut := nw.RenderArc(0, 2)
	if !strings.Contains(arcOut, "arc") || !strings.Contains(arcOut, "1") {
		t.Errorf("RenderArc:\n%s", arcOut)
	}
	if nw.Stats() == "" {
		t.Error("Stats empty")
	}
}

// TestQuickExtractionMatchesBruteForce compares backtracking extraction
// with brute-force enumeration on small random networks.
func TestQuickExtractionMatchesBruteForce(t *testing.T) {
	g := testGrammar(t)
	f := func(seed int64) bool {
		s := seed | 1
		rnd := func(n int) int {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			v := int(s % int64(n))
			if v < 0 {
				v = -v
			}
			return v
		}
		words := make([]string, 2+rnd(2))
		for i := range words {
			if rnd(2) == 0 {
				words[i] = "w"
			} else {
				words[i] = "v"
			}
		}
		nw := buildNetwork(t, g, words...)
		// Random extra matrix zeroing to create interesting structure.
		for k := 0; k < 10; k++ {
			arc := nw.Arcs()[rnd(len(nw.Arcs()))]
			rows, cols := arc.M.Rows(), arc.M.Cols()
			arc.M.ClearBit(rnd(rows), rnd(cols))
		}
		got := len(nw.ExtractParses(0))
		want := bruteForceCount(nw)
		if got != want {
			t.Logf("words=%v got=%d want=%d", words, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// bruteForceCount enumerates every combination of live role values and
// counts the pairwise-compatible ones.
func bruteForceCount(nw *Network) int {
	total := nw.Space().NumRoles()
	domains := make([][]int, total)
	for gr := 0; gr < total; gr++ {
		domains[gr] = nw.Domain(gr).Ones()
	}
	count := 0
	choice := make([]int, total)
	var rec func(d int)
	rec = func(d int) {
		if d == total {
			count++
			return
		}
		for _, idx := range domains[d] {
			ok := true
			for p := 0; p < d; p++ {
				if !nw.Compatible(p, choice[p], d, idx) {
					ok = false
					break
				}
			}
			if ok {
				choice[d] = idx
				rec(d + 1)
			}
		}
	}
	rec(0)
	return count
}

func TestExtractParsesLimit(t *testing.T) {
	g := testGrammar(t)
	nw := buildNetwork(t, g, "w", "v", "v")
	for _, c := range g.Unary() {
		nw.ApplyUnary(c)
	}
	for _, c := range g.Binary() {
		nw.ApplyBinary(c)
		nw.ConsistencyPass()
	}
	nw.Filter(0)
	all := nw.ExtractParses(0)
	if len(all) < 2 {
		t.Skipf("want an ambiguous network, got %d parses", len(all))
	}
	one := nw.ExtractParses(1)
	if len(one) != 1 {
		t.Errorf("limit=1 returned %d", len(one))
	}
}

// TestFilterCtx pins the cancellation contract of the filtering loop: a
// live context filters exactly like Filter, a dead one stops before the
// next pass and reports the context error.
func TestFilterCtx(t *testing.T) {
	g := testGrammar(t)
	build := func() *Network {
		sent, err := cdg.Resolve(g, []string{"w", "v", "w"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		nw := New(cdg.NewSpace(g, sent))
		for _, c := range g.Unary() {
			nw.ApplyUnary(c)
		}
		for _, c := range g.Binary() {
			nw.ApplyBinary(c)
			nw.ConsistencyPass()
		}
		return nw
	}

	live := build()
	passes, err := live.FilterCtx(context.Background(), 0)
	if err != nil || passes < 1 {
		t.Fatalf("live filter: passes=%d err=%v", passes, err)
	}
	ref := build()
	if got := ref.Filter(0); got != passes {
		t.Errorf("Filter=%d FilterCtx=%d, should agree", got, passes)
	}
	if !live.EqualState(ref) {
		t.Error("FilterCtx and Filter reached different fixpoints")
	}

	cancelled := build()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	passes, err = cancelled.FilterCtx(ctx, 0)
	if passes != 0 || !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled filter: passes=%d err=%v, want 0/Canceled", passes, err)
	}
}
