package cn_test

// External test package: the AC-4 equivalence tests drive networks
// through the serial engine, which itself imports cn.

import (
	"testing"
	"testing/quick"

	"repro/internal/cn"
	"repro/internal/grammars"
	"repro/internal/serial"
)

// clonePair returns two independent copies of a parse's final network
// so both filtering algorithms can run from the same state.
func clonePair(t testing.TB, res *serial.Result) (*cn.Network, *cn.Network) {
	t.Helper()
	return res.Network.Clone(), res.Network.Clone()
}

func TestAC4MatchesAC1OnChain(t *testing.T) {
	g := grammars.Chain()
	for _, n := range []int{3, 6, 10} {
		words := grammars.ChainSentence(n)
		sres, err := serial.ParseWords(g, words, serial.Options{Filter: false})
		if err != nil {
			t.Fatal(err)
		}
		ac1, ac4 := clonePair(t, sres)
		ac1.Filter(0)
		ac4.FilterAC4()
		if !ac1.EqualState(ac4) {
			t.Errorf("n=%d: AC-4 fixpoint differs from AC-1\nac1:\n%s\nac4:\n%s",
				n, ac1.Render(), ac4.Render())
		}
	}
}

func TestAC4OnDemoAndEnglish(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func() (*serial.Result, error)
	}{
		{"demo", func() (*serial.Result, error) {
			return serial.ParseWords(grammars.PaperDemo(), grammars.PaperSentence(), serial.Options{Filter: false})
		}},
		{"english", func() (*serial.Result, error) {
			return serial.ParseWords(grammars.English(),
				[]string{"the", "dog", "saw", "the", "man", "with", "the", "telescope"},
				serial.Options{Filter: false})
		}},
	} {
		res, err := tc.run()
		if err != nil {
			t.Fatal(err)
		}
		ac1, ac4 := clonePair(t, res)
		ac1.Filter(0)
		ac4.FilterAC4()
		if !ac1.EqualState(ac4) {
			t.Errorf("%s: AC-4 differs from AC-1", tc.name)
		}
	}
}

// TestQuickAC4MatchesAC1Random fuzzes the equivalence over random
// grammars.
func TestQuickAC4MatchesAC1Random(t *testing.T) {
	f := func(seed uint64) bool {
		g := grammars.Random(seed)
		words := grammars.RandomSentence(g, seed*3+1, 2+int(seed%3))
		sres, err := serial.ParseWords(g, words, serial.Options{Filter: false})
		if err != nil {
			return false
		}
		ac1, ac4 := clonePair(t, sres)
		ac1.Filter(0)
		ac4.FilterAC4()
		return ac1.EqualState(ac4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestAC4ScalesBetterOnDeepCascade: on the chain grammar the AC-1
// support work grows with cascade depth × network size (the Θ(n)
// passes each rescan every live value), while AC-4's total work is a
// one-shot initialization plus cascade-proportional decrements. The
// growth *rate* of AC-1's support work must visibly exceed AC-4's as n
// doubles.
func TestAC4ScalesBetterOnDeepCascade(t *testing.T) {
	g := grammars.Chain()
	work := func(n int, ac4 bool) uint64 {
		sres, err := serial.ParseWords(g, grammars.ChainSentence(n), serial.Options{Filter: false})
		if err != nil {
			t.Fatal(err)
		}
		nw := sres.Network.Clone()
		nw.Counters.Reset()
		if ac4 {
			nw.FilterAC4()
		} else {
			nw.Filter(0)
		}
		return nw.Counters.SupportChecks
	}
	ac1Growth := float64(work(16, false)) / float64(work(8, false))
	ac4Growth := float64(work(16, true)) / float64(work(8, true))
	// On the chain grammar the unary constraints already shrink every
	// domain to O(1), so in arc-line units the two algorithms are
	// close; the depth factor must still show as a strictly faster
	// AC-1 growth. (On dense domains the gap is a full factor of the
	// cascade depth — see the package comment in ac4.go.)
	if ac1Growth <= 1.05*ac4Growth {
		t.Errorf("AC-1 growth %.1fx should exceed AC-4 growth %.1fx when n doubles",
			ac1Growth, ac4Growth)
	}
}
