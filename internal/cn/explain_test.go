package cn_test

import (
	"strings"
	"testing"

	"repro/internal/cdg"
	"repro/internal/cn"
	"repro/internal/grammars"
	"repro/internal/serial"
)

// TestExplainSupportFigure10 replays the paper's Figure 10/12 example:
// checking SUBJ-1 in program's governor role after the first binary
// constraint — the check whose AND comes out 0 and eliminates SUBJ-1.
func TestExplainSupportFigure10(t *testing.T) {
	g := grammars.PaperDemo()
	sent, err := cdg.Resolve(g, grammars.PaperSentence(), nil)
	if err != nil {
		t.Fatal(err)
	}
	sp := cdg.NewSpace(g, sent)

	// Reconstruct the Figure 4 state: unary constraints plus the first
	// binary constraint, before consistency maintenance.
	nw := cn.New(sp)
	for _, c := range g.Unary() {
		nw.ApplyUnary(c)
	}
	nw.ApplyBinary(g.Binary()[0])

	pos, r, idx, err := cn.ParseRVSpec(sp, "2.governor.SUBJ-1")
	if err != nil {
		t.Fatal(err)
	}
	out := nw.ExplainSupport(pos, r, idx)
	if !strings.Contains(out, "UNSUPPORTED") {
		t.Errorf("SUBJ-1 should be unsupported after the first binary constraint:\n%s", out)
	}
	// The failing arc is the one to runs/3.governor (only ROOT-nil
	// lives there, and the pair was zeroed).
	if !strings.Contains(out, "runs/3.governor:  OR=0") {
		t.Errorf("missing the failing arc:\n%s", out)
	}

	// SUBJ-3 stays supported.
	_, _, idx3, err := cn.ParseRVSpec(sp, "2.governor.SUBJ-3")
	if err != nil {
		t.Fatal(err)
	}
	out3 := nw.ExplainSupport(pos, r, idx3)
	if !strings.Contains(out3, "supported — the role value stays") {
		t.Errorf("SUBJ-3 should be supported:\n%s", out3)
	}
}

func TestExplainSupportEliminatedValue(t *testing.T) {
	g := grammars.PaperDemo()
	res, err := serial.ParseWords(g, grammars.PaperSentence(), serial.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sp := res.Network.Space()
	pos, r, idx, err := cn.ParseRVSpec(sp, "2.governor.SUBJ-1")
	if err != nil {
		t.Fatal(err)
	}
	out := res.Network.ExplainSupport(pos, r, idx)
	if !strings.Contains(out, "already eliminated") {
		t.Errorf("final network should report SUBJ-1 eliminated:\n%s", out)
	}
}

func TestParseRVSpecErrors(t *testing.T) {
	g := grammars.PaperDemo()
	sent, _ := cdg.Resolve(g, grammars.PaperSentence(), nil)
	sp := cdg.NewSpace(g, sent)
	for _, spec := range []string{
		"",
		"2.governor",         // missing value
		"0.governor.SUBJ-1",  // bad position
		"9.governor.SUBJ-1",  // out of range
		"2.flavor.SUBJ-1",    // unknown role
		"2.governor.XYZ-1",   // unknown label
		"2.governor.NP-1",    // label not in role's table
		"2.governor.SUBJ-99", // bad mod
		"2.governor.SUBJ",    // no mod
		"x.governor.SUBJ-1",  // non-numeric pos
	} {
		if _, _, _, err := cn.ParseRVSpec(sp, spec); err == nil {
			t.Errorf("ParseRVSpec(%q): expected error", spec)
		}
	}
	// nil modifiee works.
	_, _, idx, err := cn.ParseRVSpec(sp, "3.governor.ROOT-nil")
	if err != nil {
		t.Fatal(err)
	}
	if sp.RVString(0, idx) != "ROOT-nil" {
		t.Errorf("spec decoded to %s", sp.RVString(0, idx))
	}
}
