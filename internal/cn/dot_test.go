package cn

import (
	"strings"
	"testing"
)

func TestRenderDot(t *testing.T) {
	g := testGrammar(t)
	nw := buildNetwork(t, g, "w", "v", "w")
	for _, c := range g.Unary() {
		nw.ApplyUnary(c)
	}
	for _, c := range g.Binary() {
		nw.ApplyBinary(c)
		nw.ConsistencyPass()
	}
	nw.Filter(0)
	parses := nw.ExtractParses(1)
	if len(parses) != 1 {
		t.Fatal("want a parse")
	}
	dot := RenderDot(parses[0])
	for _, want := range []string{
		"digraph precedence",
		"rankdir=LR",
		`w1 [label="w/1"]`,
		`w2 [label="v/2"]`,
		`w1 -> w2 [label="D(g)"]`,
		`w3 -> w2 [label="D(g)"]`,
		"rank=same",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot missing %q:\n%s", want, dot)
		}
	}
	// Well-formed: balanced braces.
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Error("unbalanced braces")
	}
}

func TestRenderNetworkDotShowsAmbiguity(t *testing.T) {
	g := testGrammar(t)
	// Two heads: w at position 1 can attach to either v.
	nw := buildNetwork(t, g, "w", "v", "v")
	for _, c := range g.Unary() {
		nw.ApplyUnary(c)
	}
	for _, c := range g.Binary() {
		nw.ApplyBinary(c)
		nw.ConsistencyPass()
	}
	nw.Filter(0)
	dot := RenderNetworkDot(nw)
	if !strings.Contains(dot, "style=dashed") {
		t.Errorf("ambiguous candidates should be dashed:\n%s", dot)
	}
	if strings.Count(dot, "w1 ->") < 2 {
		t.Errorf("expected two candidate edges from w1:\n%s", dot)
	}
}
