package cn

import (
	"fmt"
	"strings"

	"repro/internal/cdg"
)

// Assignment is one complete parse: a single role value chosen for every
// role of every word, all pairwise compatible under the arc matrices.
// The modifiees of the chosen role values form the edges of the
// precedence graph (Figure 7 of the paper).
type Assignment struct {
	sp *cdg.Space
	// rv[gr] is the chosen role-value index of global role gr.
	rv []int
}

// RoleValue returns the chosen role value for role r of the word at
// 1-based position pos.
func (a *Assignment) RoleValue(pos int, r cdg.RoleID) cdg.RVRef {
	gr := a.sp.GlobalRole(pos, r)
	return a.sp.RVRef(pos, r, a.rv[gr])
}

// Index returns the chosen role-value index for global role gr.
func (a *Assignment) Index(gr int) int { return a.rv[gr] }

// String renders the assignment in the style of Figure 7, one word per
// line:
//
//	Word=program Position=2 governor=SUBJ-3 needs=NP-1
func (a *Assignment) String() string {
	sp := a.sp
	g := sp.Grammar()
	var b strings.Builder
	for pos := 1; pos <= sp.N(); pos++ {
		fmt.Fprintf(&b, "Word=%s Position=%d", sp.Sentence().Word(pos), pos)
		for r := 0; r < sp.Q(); r++ {
			gr := sp.GlobalRole(pos, cdg.RoleID(r))
			fmt.Fprintf(&b, " %s=%s", g.RoleName(cdg.RoleID(r)), sp.RVString(cdg.RoleID(r), a.rv[gr]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Edges returns the precedence-graph edges: one (dependent position,
// role, label, head position) tuple per role whose modifiee is not nil.
func (a *Assignment) Edges() []Edge {
	sp := a.sp
	var out []Edge
	for gr, idx := range a.rv {
		pos, r := sp.RoleAt(gr)
		ref := sp.RVRef(pos, r, idx)
		if ref.Mod != cdg.NilMod {
			out = append(out, Edge{From: pos, Role: r, Label: ref.Lab, To: ref.Mod})
		}
	}
	return out
}

// Edge is one arc of a precedence graph: word From fills function Label
// for the word at To, via role Role.
type Edge struct {
	From  int
	Role  cdg.RoleID
	Label cdg.LabelID
	To    int
}

// Satisfies checks the assignment against every constraint of the
// grammar directly (not via the matrices). Used by tests to prove that
// extraction only ever returns genuine parses.
func (a *Assignment) Satisfies(g *cdg.Grammar) bool {
	sp := a.sp
	env := &cdg.Env{Sent: sp.Sentence()}
	refs := make([]cdg.RVRef, len(a.rv))
	for gr, idx := range a.rv {
		pos, r := sp.RoleAt(gr)
		refs[gr] = sp.RVRef(pos, r, idx)
	}
	for _, c := range g.Unary() {
		for _, ref := range refs {
			env.X = ref
			if !c.Satisfied(env) {
				return false
			}
		}
	}
	for _, c := range g.Binary() {
		for i := range refs {
			for j := range refs {
				if i == j {
					continue
				}
				env.X, env.Y = refs[i], refs[j]
				if !c.Satisfied(env) {
					return false
				}
			}
		}
	}
	return true
}

// ExtractParses enumerates up to limit complete, pairwise-compatible
// assignments by depth-first backtracking with forward checking over the
// arc matrices (limit <= 0 enumerates all). The paper extracts
// precedence graphs the same way: "the precedence graphs are extracted
// by selecting a single role value for each role, all of which must be
// consistent given the arc matrices".
func (nw *Network) ExtractParses(limit int) []*Assignment {
	total := nw.sp.NumRoles()
	chosen := make([]int, total)
	var out []*Assignment

	// candidates[gr] is recomputed per depth from the domain filtered
	// by compatibility with all earlier choices.
	var rec func(depth int) bool
	rec = func(depth int) bool {
		if depth == total {
			a := &Assignment{sp: nw.sp, rv: append([]int(nil), chosen...)}
			out = append(out, a)
			return limit > 0 && len(out) >= limit
		}
		stop := false
		nw.domains[depth].ForEach(func(idx int) {
			if stop {
				return
			}
			ok := true
			for prev := 0; prev < depth; prev++ {
				if !nw.Compatible(prev, chosen[prev], depth, idx) {
					ok = false
					break
				}
			}
			if !ok {
				return
			}
			chosen[depth] = idx
			if rec(depth + 1) {
				stop = true
			}
		})
		return stop
	}
	rec(0)
	return out
}

// HasParse reports whether at least one complete assignment exists —
// exact acceptance, as opposed to the constant-time local acceptance
// test AllRolesAlive.
func (nw *Network) HasParse() bool {
	return len(nw.ExtractParses(1)) == 1
}
