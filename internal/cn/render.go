package cn

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cdg"
)

// Render prints the network in the style of the paper's figures: one
// line per role listing its surviving role values, e.g.
//
//	the/1        governor: {DET-2, DET-3}
//	the/1        needs:    {BLANK-nil}
//
// The output is deterministic and is what the Figure 1–6 golden tests
// compare against.
func (nw *Network) Render() string {
	sp := nw.sp
	g := sp.Grammar()
	roleWidth := 0
	for r := 0; r < sp.Q(); r++ {
		if w := len(g.RoleName(cdg.RoleID(r))); w > roleWidth {
			roleWidth = w
		}
	}
	wordWidth := 0
	for pos := 1; pos <= sp.N(); pos++ {
		if w := len(sp.Sentence().Word(pos)) + 2; w > wordWidth {
			wordWidth = w
		}
	}
	var b strings.Builder
	for pos := 1; pos <= sp.N(); pos++ {
		for r := 0; r < sp.Q(); r++ {
			gr := sp.GlobalRole(pos, cdg.RoleID(r))
			vals := nw.DomainStrings(gr)
			fmt.Fprintf(&b, "%-*s %-*s {%s}\n",
				wordWidth, fmt.Sprintf("%s/%d", sp.Sentence().Word(pos), pos),
				roleWidth+1, g.RoleName(cdg.RoleID(r))+":",
				strings.Join(vals, ", "))
		}
	}
	return b.String()
}

// RenderArc prints one arc matrix in the style of Figures 3–6 and 9:
// rows are the surviving role values of the lower-numbered role, columns
// those of the higher-numbered role.
func (nw *Network) RenderArc(a, b int) string {
	arc, aIsRow := nw.ArcBetween(a, b)
	if !aIsRow {
		a, b = b, a
	}
	sp := nw.sp
	posA, ra := sp.RoleAt(arc.A)
	posB, rb := sp.RoleAt(arc.B)
	rows := nw.domains[arc.A].Ones()
	cols := nw.domains[arc.B].Ones()

	rowLabels := make([]string, len(rows))
	width := 0
	for i, idx := range rows {
		rowLabels[i] = sp.RVString(ra, idx)
		if len(rowLabels[i]) > width {
			width = len(rowLabels[i])
		}
	}
	colLabels := make([]string, len(cols))
	colWidth := 1
	for j, idx := range cols {
		colLabels[j] = sp.RVString(rb, idx)
		if len(colLabels[j]) > colWidth {
			colWidth = len(colLabels[j])
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "arc %s/%d.%s x %s/%d.%s\n",
		sp.Sentence().Word(posA), posA, sp.Grammar().RoleName(ra),
		sp.Sentence().Word(posB), posB, sp.Grammar().RoleName(rb))
	fmt.Fprintf(&sb, "%*s", width, "")
	for _, cl := range colLabels {
		fmt.Fprintf(&sb, " %*s", colWidth, cl)
	}
	sb.WriteByte('\n')
	for i, ridx := range rows {
		fmt.Fprintf(&sb, "%-*s", width, rowLabels[i])
		for _, cidx := range cols {
			v := 0
			if arc.M.Get(ridx, cidx) {
				v = 1
			}
			fmt.Fprintf(&sb, " %*d", colWidth, v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// RenderPrecedenceGraph prints an assignment's dependency structure in
// the spirit of Figure 7: each word with its chosen role values and an
// arrow list of modifiee edges.
func RenderPrecedenceGraph(a *Assignment) string {
	sp := a.sp
	g := sp.Grammar()
	var b strings.Builder
	b.WriteString(a.String())
	edges := a.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].Role < edges[j].Role
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  %s/%d --%s(%s)--> %s/%d\n",
			sp.Sentence().Word(e.From), e.From,
			g.LabelName(e.Label), g.RoleName(e.Role),
			sp.Sentence().Word(e.To), e.To)
	}
	return b.String()
}
