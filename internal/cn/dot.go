package cn

import (
	"fmt"
	"strings"

	"repro/internal/cdg"
)

// RenderDot emits a precedence graph in Graphviz DOT syntax: one node
// per word (rank-ordered left to right) and one labeled edge per
// non-nil role value, the visual form of the paper's Figure 7.
func RenderDot(a *Assignment) string {
	sp := a.sp
	g := sp.Grammar()
	var b strings.Builder
	b.WriteString("digraph precedence {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box];\n")
	for pos := 1; pos <= sp.N(); pos++ {
		fmt.Fprintf(&b, "  w%d [label=%q];\n", pos,
			fmt.Sprintf("%s/%d", sp.Sentence().Word(pos), pos))
	}
	// Keep the sentence order on one rank.
	b.WriteString("  { rank=same;")
	for pos := 1; pos <= sp.N(); pos++ {
		fmt.Fprintf(&b, " w%d;", pos)
	}
	b.WriteString(" }\n")
	for pos := 1; pos+1 <= sp.N(); pos++ {
		fmt.Fprintf(&b, "  w%d -> w%d [style=invis];\n", pos, pos+1)
	}
	for _, e := range a.Edges() {
		fmt.Fprintf(&b, "  w%d -> w%d [label=%q];\n",
			e.From, e.To,
			fmt.Sprintf("%s(%s)", g.LabelName(e.Label), g.RoleName(e.Role)))
	}
	b.WriteString("}\n")
	return b.String()
}

// RenderNetworkDot emits the whole (possibly still ambiguous)
// constraint network in DOT: words as boxes, one edge per surviving
// non-nil role value, with multiplicity visible — ambiguity appears as
// parallel candidate edges.
func RenderNetworkDot(nw *Network) string {
	sp := nw.sp
	g := sp.Grammar()
	var b strings.Builder
	b.WriteString("digraph network {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box];\n")
	for pos := 1; pos <= sp.N(); pos++ {
		fmt.Fprintf(&b, "  w%d [label=%q];\n", pos,
			fmt.Sprintf("%s/%d", sp.Sentence().Word(pos), pos))
	}
	for gr := 0; gr < sp.NumRoles(); gr++ {
		pos, r := sp.RoleAt(gr)
		nw.domains[gr].ForEach(func(idx int) {
			ref := sp.RVRef(pos, r, idx)
			if ref.Mod == cdg.NilMod {
				return
			}
			style := ""
			if nw.domains[gr].Count() > 1 {
				style = ", style=dashed" // a still-ambiguous candidate
			}
			fmt.Fprintf(&b, "  w%d -> w%d [label=%q%s];\n",
				pos, ref.Mod,
				fmt.Sprintf("%s(%s)", g.LabelName(ref.Lab), g.RoleName(r)),
				style)
		})
	}
	b.WriteString("}\n")
	return b.String()
}
