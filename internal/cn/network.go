// Package cn implements the CDG constraint network of section 1 of the
// paper: one node per word, q roles per node, a domain of role values
// per role, and an arc with a compatibility bit-matrix between every
// pair of distinct roles.
//
// The package provides the network primitives — construction, unary and
// binary constraint propagation, consistency maintenance, filtering, and
// parse extraction. Engine drivers (internal/serial, internal/pram,
// internal/core) sequence these primitives according to their machine
// model; the reference semantics live here.
//
// Matrices are full-dimensional for the life of the parse: a role value
// that dies has its domain bit cleared and its rows/columns zeroed, but
// indices never shift (the paper's design decision #4). Consistency
// maintenance uses simultaneous two-phase semantics — first every role
// value's support is computed against the current matrices, then all
// unsupported values are eliminated at once — which is exactly what the
// CRCW P-RAM and MasPar formulations do and makes all three engines
// bit-for-bit comparable.
package cn

import (
	"context"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/cdg"
	"repro/internal/metrics"
)

// Arc connects two distinct global roles A < B. Entry (i, j) of M is 1
// iff role value i of A and role value j of B may legally coexist.
type Arc struct {
	A, B int
	M    *bitset.Matrix
}

// Network is the constraint network for one sentence.
type Network struct {
	sp      *cdg.Space
	domains []*bitset.Set
	arcs    []*Arc
	// arcAt[a][b] is the index into arcs for the pair {a,b}, or -1 on
	// the diagonal.
	arcAt [][]int

	// scr holds the reusable buffers of the span-based propagation
	// loops. Network methods are single-goroutine by contract (the
	// parallel engines drive their own sweeps over the primitives), so
	// one scratch set per network suffices and steady-state propagation
	// allocates nothing.
	scr evalScratch

	// Counters receives the work accounting; never nil.
	Counters *metrics.Counters
}

// evalScratch backs ApplyUnary/ApplyBinary/ApplyBinaryAll: the live
// role values of the swept domain, their domain indices, and the
// verdict spans the bytecode evaluator fills in one call per row.
type evalScratch struct {
	refs []cdg.RVRef
	idxs []int
	fwd  []bool
	rev  []bool
	cks  []cdg.Checker
}

// liveRefs fills the scratch ref/index buffers with the live role
// values of global role gr, in ascending index order (the order every
// pre-span loop enumerated them in).
func (nw *Network) liveRefs(gr int) ([]cdg.RVRef, []int) {
	pos, r := nw.sp.RoleAt(gr)
	nw.scr.refs = nw.scr.refs[:0]
	nw.scr.idxs = nw.scr.idxs[:0]
	nw.domains[gr].ForEach(func(idx int) {
		nw.scr.refs = append(nw.scr.refs, nw.sp.RVRef(pos, r, idx))
		nw.scr.idxs = append(nw.scr.idxs, idx)
	})
	return nw.scr.refs, nw.scr.idxs
}

// boolSpan resizes buf to n verdicts, reusing its backing array.
func boolSpan(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// New builds the initial network: domains from table T, the lexicon
// category of each word, and the no-self-modification rule; arc matrices
// all-ones between alive values. This is the state of Figure 1 (with the
// paper's later design decision #1 — arcs built before unary
// propagation — baked in, which is harmless for the serial engine and
// required for the parallel ones).
func New(sp *cdg.Space) *Network {
	nw := &Network{sp: sp, Counters: &metrics.Counters{}}
	total := sp.NumRoles()
	nw.domains = make([]*bitset.Set, total)
	for gr := 0; gr < total; gr++ {
		pos, r := sp.RoleAt(gr)
		dom := bitset.New(sp.RVCount(r))
		for idx := 0; idx < sp.RVCount(r); idx++ {
			if sp.InitialAlive(pos, r, idx) {
				dom.SetBit(idx)
			}
		}
		nw.domains[gr] = dom
	}
	nw.arcAt = make([][]int, total)
	for a := 0; a < total; a++ {
		nw.arcAt[a] = make([]int, total)
		for b := range nw.arcAt[a] {
			nw.arcAt[a][b] = -1
		}
	}
	for a := 0; a < total; a++ {
		_, ra := sp.RoleAt(a)
		for b := a + 1; b < total; b++ {
			_, rb := sp.RoleAt(b)
			m := bitset.NewMatrix(sp.RVCount(ra), sp.RVCount(rb))
			nw.domains[a].ForEach(func(i int) {
				nw.domains[b].ForEach(func(j int) {
					m.SetBit(i, j)
					nw.Counters.MatrixWrites++
				})
			})
			idx := len(nw.arcs)
			nw.arcs = append(nw.arcs, &Arc{A: a, B: b, M: m})
			nw.arcAt[a][b] = idx
			nw.arcAt[b][a] = idx
		}
	}
	return nw
}

// NewShell builds a network with the same shape as New but with all
// domains empty and all matrices zero. Parallel engines fill a shell
// with their final machine state so every engine's result is inspected
// and compared through the same Network methods.
func NewShell(sp *cdg.Space) *Network {
	nw := &Network{sp: sp, Counters: &metrics.Counters{}}
	total := sp.NumRoles()
	nw.domains = make([]*bitset.Set, total)
	for gr := 0; gr < total; gr++ {
		_, r := sp.RoleAt(gr)
		nw.domains[gr] = bitset.New(sp.RVCount(r))
	}
	nw.arcAt = make([][]int, total)
	for a := 0; a < total; a++ {
		nw.arcAt[a] = make([]int, total)
		for b := range nw.arcAt[a] {
			nw.arcAt[a][b] = -1
		}
	}
	for a := 0; a < total; a++ {
		_, ra := sp.RoleAt(a)
		for b := a + 1; b < total; b++ {
			_, rb := sp.RoleAt(b)
			idx := len(nw.arcs)
			nw.arcs = append(nw.arcs, &Arc{A: a, B: b, M: bitset.NewMatrix(sp.RVCount(ra), sp.RVCount(rb))})
			nw.arcAt[a][b] = idx
			nw.arcAt[b][a] = idx
		}
	}
	return nw
}

// Space returns the role-value index space.
func (nw *Network) Space() *cdg.Space { return nw.sp }

// Domain returns the live role-value set of global role gr (do not
// mutate).
func (nw *Network) Domain(gr int) *bitset.Set { return nw.domains[gr] }

// Arcs returns all arcs (do not mutate).
func (nw *Network) Arcs() []*Arc { return nw.arcs }

// ArcBetween returns the arc joining global roles a and b, plus whether
// a indexes the rows (a < b). It panics on a == b: roles have no
// self-arc (the disabled PEs of Figure 11).
func (nw *Network) ArcBetween(a, b int) (arc *Arc, aIsRow bool) {
	if a == b {
		panic("cn: no self arc")
	}
	idx := nw.arcAt[a][b]
	return nw.arcs[idx], a < b
}

// Compatible reports whether role value ia of global role a can coexist
// with role value ib of global role b.
func (nw *Network) Compatible(a, ia, b, ib int) bool {
	arc, aIsRow := nw.ArcBetween(a, b)
	if aIsRow {
		return arc.M.Get(ia, ib)
	}
	return arc.M.Get(ib, ia)
}

// Eliminate removes role value idx from global role gr: the domain bit
// is cleared and the value's row/column is zeroed in every incident arc
// matrix — O(n²) work, as the paper charges for one consistency-
// maintenance elimination.
func (nw *Network) Eliminate(gr, idx int) {
	if !nw.domains[gr].Get(idx) {
		return
	}
	nw.domains[gr].ClearBit(idx)
	nw.Counters.Eliminations++
	for other := 0; other < len(nw.domains); other++ {
		if other == gr {
			continue
		}
		arc, isRow := nw.ArcBetween(gr, other)
		if isRow {
			arc.M.ZeroRow(idx)
		} else {
			arc.M.ZeroCol(idx)
		}
		nw.Counters.MatrixWrites += uint64(nw.sp.RVCount(roleIDOf(nw.sp, other)))
	}
}

func roleIDOf(sp *cdg.Space, gr int) cdg.RoleID {
	_, r := sp.RoleAt(gr)
	return r
}

// ApplyUnary propagates one unary constraint: every live role value is
// checked, and violators are eliminated. O(n²) checks, matching §1.4.
func (nw *Network) ApplyUnary(c *cdg.Constraint) int {
	if c.Arity != 1 {
		panic("cn: ApplyUnary needs a unary constraint")
	}
	ck := c.Bind(nw.sp.Sentence())
	eliminated := 0
	for gr := range nw.domains {
		refs, idxs := nw.liveRefs(gr)
		out := boolSpan(&nw.scr.fwd, len(refs))
		ck.Check1Span(refs, out)
		nw.Counters.ConstraintChecks += uint64(len(refs))
		for k, idx := range idxs {
			if !out[k] {
				nw.Eliminate(gr, idx)
				eliminated++
			}
		}
	}
	return eliminated
}

// ApplyBinary propagates one binary constraint over every arc: each
// surviving pair is tested in both variable orientations and the matrix
// bit is zeroed on violation. O(n⁴) pair checks, matching §1.4. It does
// not run consistency maintenance; callers sequence that separately.
//
// The sweep is span-shaped: one row value against the whole live
// column set per bytecode call, both orientations evaluated up front.
// The evaluator may therefore run on pairs whose matrix bit is already
// zero (or whose forward orientation failed); ConstraintChecks charges
// exactly the checks the per-pair loop performed — one per surviving
// pair plus one per forward pass — so counters are bit-identical to
// the pre-span accounting and to the AST fallback.
func (nw *Network) ApplyBinary(c *cdg.Constraint) int {
	if c.Arity != 2 {
		panic("cn: ApplyBinary needs a binary constraint")
	}
	ck := c.Bind(nw.sp.Sentence())
	zeroed := 0
	for _, arc := range nw.arcs {
		posA, ra := nw.sp.RoleAt(arc.A)
		ys, js := nw.liveRefs(arc.B)
		fwd := boolSpan(&nw.scr.fwd, len(ys))
		rev := boolSpan(&nw.scr.rev, len(ys))
		nw.domains[arc.A].ForEach(func(i int) {
			refA := nw.sp.RVRef(posA, ra, i)
			ck.Check2Span(refA, ys, fwd)
			ck.Check2SpanRev(refA, ys, rev)
			for k, j := range js {
				if !arc.M.Get(i, j) {
					continue
				}
				nw.Counters.ConstraintChecks++
				ok := fwd[k]
				if ok {
					nw.Counters.ConstraintChecks++
					ok = rev[k]
				}
				if !ok {
					arc.M.ClearBit(i, j)
					nw.Counters.MatrixWrites++
					zeroed++
				}
			}
		})
	}
	return zeroed
}

// ApplyBinaryAll propagates every given binary constraint in a single
// sweep over the arcs: each surviving pair is enumerated once and
// tested against all constraints (in both orientations) before moving
// on. The fixpoint is identical to applying the constraints one at a
// time — matrix bits only ever go 1→0 and each pair's verdict per
// constraint is independent of the others. The pair-enumeration
// overhead is paid once instead of len(cs) times, at the cost of losing
// the interleaved consistency passes that shrink domains between
// constraints (so the raw check count usually goes UP — see the serial
// engine's FuseBinary documentation for the measured trade-off). This
// is the per-element "interpret all broadcast constraints" reading of
// Figure 8's mesh row.
func (nw *Network) ApplyBinaryAll(cs []*cdg.Constraint) int {
	for _, c := range cs {
		if c.Arity != 2 {
			panic("cn: ApplyBinaryAll needs binary constraints")
		}
	}
	nw.scr.cks = nw.scr.cks[:0]
	for _, c := range cs {
		nw.scr.cks = append(nw.scr.cks, c.Bind(nw.sp.Sentence()))
	}
	cks := nw.scr.cks
	zeroed := 0
	for _, arc := range nw.arcs {
		posA, ra := nw.sp.RoleAt(arc.A)
		ys, js := nw.liveRefs(arc.B)
		n := len(ys)
		// One fwd/rev verdict span per constraint, stride n, so the
		// per-pair loop below can replay the counted first-failure walk
		// (ConstraintChecks stops at a pair's first failing constraint,
		// exactly as the per-pair form did).
		fwd := boolSpan(&nw.scr.fwd, len(cks)*n)
		rev := boolSpan(&nw.scr.rev, len(cks)*n)
		nw.domains[arc.A].ForEach(func(i int) {
			refA := nw.sp.RVRef(posA, ra, i)
			for k := range cks {
				cks[k].Check2Span(refA, ys, fwd[k*n:(k+1)*n])
				cks[k].Check2SpanRev(refA, ys, rev[k*n:(k+1)*n])
			}
			for t, j := range js {
				if !arc.M.Get(i, j) {
					continue
				}
				for k := range cks {
					nw.Counters.ConstraintChecks++
					ok := fwd[k*n+t]
					if ok {
						nw.Counters.ConstraintChecks++
						ok = rev[k*n+t]
					}
					if !ok {
						arc.M.ClearBit(i, j)
						nw.Counters.MatrixWrites++
						zeroed++
						break
					}
				}
			}
		})
	}
	return zeroed
}

// Supported reports whether role value idx of global role gr has, in
// every incident arc, at least one 1 in its row (or column) — the
// support test of §1.4 (the OR-then-AND of Figure 10).
func (nw *Network) Supported(gr, idx int) bool {
	for other := 0; other < len(nw.domains); other++ {
		if other == gr {
			continue
		}
		nw.Counters.SupportChecks++
		arc, isRow := nw.ArcBetween(gr, other)
		if isRow {
			if !arc.M.RowAny(idx) {
				return false
			}
		} else {
			if !arc.M.ColAny(idx) {
				return false
			}
		}
	}
	return true
}

// ConsistencyPass performs one simultaneous round of consistency
// maintenance: support is evaluated for every live role value against
// the current matrices, then every unsupported value is eliminated. It
// returns the number of eliminations.
func (nw *Network) ConsistencyPass() int {
	type victim struct{ gr, idx int }
	var victims []victim
	for gr := range nw.domains {
		nw.domains[gr].ForEach(func(idx int) {
			if !nw.Supported(gr, idx) {
				victims = append(victims, victim{gr, idx})
			}
		})
	}
	for _, v := range victims {
		nw.Eliminate(v.gr, v.idx)
	}
	return len(victims)
}

// Filter repeats consistency maintenance until a fixpoint or until
// maxIters passes have run (maxIters <= 0 means unbounded). It returns
// the number of passes that performed at least one elimination plus the
// final no-op pass, i.e. the total passes executed.
func (nw *Network) Filter(maxIters int) int {
	passes, _ := nw.FilterCtx(context.Background(), maxIters)
	return passes
}

// FilterCtx is Filter with a cancellation check before every
// consistency pass, so a deadline interrupts filtering between passes
// rather than being noticed only after the fixpoint. On cancellation it
// returns the passes completed so far and ctx.Err(); the network is
// left in the (valid, partially filtered) state the last completed pass
// produced.
func (nw *Network) FilterCtx(ctx context.Context, maxIters int) (int, error) {
	passes := 0
	for {
		if err := ctx.Err(); err != nil {
			return passes, err
		}
		if maxIters > 0 && passes >= maxIters {
			return passes, nil
		}
		passes++
		nw.Counters.FilterIterations++
		if nw.ConsistencyPass() == 0 {
			return passes, nil
		}
	}
}

// AllRolesAlive reports the paper's acceptance condition: every role of
// every word retains at least one role value.
func (nw *Network) AllRolesAlive() bool {
	for _, d := range nw.domains {
		if !d.Any() {
			return false
		}
	}
	return true
}

// Ambiguous reports whether any role retains more than one role value
// (§1.4: "some of the roles in an ambiguous sentence will contain more
// than one role value").
func (nw *Network) Ambiguous() bool {
	for _, d := range nw.domains {
		if d.Count() > 1 {
			return true
		}
	}
	return false
}

// DomainStrings renders the live role values of global role gr in the
// paper's figure notation.
func (nw *Network) DomainStrings(gr int) []string {
	_, r := nw.sp.RoleAt(gr)
	var out []string
	nw.domains[gr].ForEach(func(idx int) {
		out = append(out, nw.sp.RVString(r, idx))
	})
	return out
}

// Clone deep-copies the network (counters are not shared; the clone
// starts with fresh counters).
func (nw *Network) Clone() *Network {
	c := &Network{
		sp:       nw.sp,
		domains:  make([]*bitset.Set, len(nw.domains)),
		arcs:     make([]*Arc, len(nw.arcs)),
		arcAt:    nw.arcAt,
		Counters: &metrics.Counters{},
	}
	for i, d := range nw.domains {
		c.domains[i] = d.Clone()
	}
	for i, a := range nw.arcs {
		c.arcs[i] = &Arc{A: a.A, B: a.B, M: a.M.Clone()}
	}
	return c
}

// EqualState reports whether two networks (over the same space) have
// identical domains and identical matrices restricted to live pairs.
// Matrices are compared only on live×live entries because engines may
// legitimately differ on garbage bits under already-eliminated values.
func (nw *Network) EqualState(o *Network) bool {
	if len(nw.domains) != len(o.domains) {
		return false
	}
	for i := range nw.domains {
		if !nw.domains[i].Equal(o.domains[i]) {
			return false
		}
	}
	for i, a := range nw.arcs {
		b := o.arcs[i]
		if a.A != b.A || a.B != b.B {
			return false
		}
		equal := true
		nw.domains[a.A].ForEach(func(r int) {
			nw.domains[a.B].ForEach(func(c int) {
				if a.M.Get(r, c) != b.M.Get(r, c) {
					equal = false
				}
			})
		})
		if !equal {
			return false
		}
	}
	return true
}

// Stats summarizes the live state for diagnostics.
func (nw *Network) Stats() string {
	live := 0
	for _, d := range nw.domains {
		live += d.Count()
	}
	ones := 0
	for _, a := range nw.arcs {
		ones += a.M.Count()
	}
	return fmt.Sprintf("roles=%d liveRVs=%d arcs=%d matrixOnes=%d",
		len(nw.domains), live, len(nw.arcs), ones)
}
