package cn

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cdg"
)

// ExplainSupport renders the Figure 10 computation for one role value:
// for every arc incident to its role, the surviving row of arc elements
// and their OR; then the AND across arcs that decides whether the value
// keeps its place. This is the serial-network view of the same
// OR-then-AND that Figure 12 computes with scanOr/scanAnd segments on
// the MasPar.
func (nw *Network) ExplainSupport(pos int, r cdg.RoleID, idx int) string {
	sp := nw.sp
	g := sp.Grammar()
	gr := sp.GlobalRole(pos, r)
	var b strings.Builder
	fmt.Fprintf(&b, "support of %s in %s/%d.%s",
		sp.RVString(r, idx), sp.Sentence().Word(pos), pos, g.RoleName(r))
	if !nw.domains[gr].Get(idx) {
		b.WriteString(" (already eliminated)\n")
	} else {
		b.WriteString("\n")
	}
	finalAnd := true
	for other := 0; other < sp.NumRoles(); other++ {
		if other == gr {
			continue
		}
		oPos, oR := sp.RoleAt(other)
		arc, isRow := nw.ArcBetween(gr, other)
		var bits []string
		or := false
		nw.domains[other].ForEach(func(j int) {
			v := false
			if isRow {
				v = arc.M.Get(idx, j)
			} else {
				v = arc.M.Get(j, idx)
			}
			or = or || v
			bit := "0"
			if v {
				bit = "1"
			}
			bits = append(bits, fmt.Sprintf("%s:%s", sp.RVString(oR, j), bit))
		})
		orBit := "0"
		if or {
			orBit = "1"
		}
		fmt.Fprintf(&b, "  arc to %s/%d.%-10s OR=%s   [%s]\n",
			sp.Sentence().Word(oPos), oPos, g.RoleName(oR)+":", orBit,
			strings.Join(bits, " "))
		finalAnd = finalAnd && or
	}
	verdict := "supported — the role value stays"
	if !finalAnd {
		verdict = "UNSUPPORTED — consistency maintenance removes it"
	}
	fmt.Fprintf(&b, "  AND of the ORs = %v -> %s\n", b2i(finalAnd), verdict)
	return b.String()
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}

// ParseRVSpec parses the CLI's role-value notation
// "pos.role.LABEL-mod" (mod a number or "nil"), e.g.
// "2.governor.SUBJ-1", returning the network coordinates.
func ParseRVSpec(sp *cdg.Space, spec string) (pos int, r cdg.RoleID, idx int, err error) {
	parts := strings.SplitN(spec, ".", 3)
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("cn: role-value spec must be pos.role.LABEL-mod, got %q", spec)
	}
	pos, err = strconv.Atoi(parts[0])
	if err != nil || pos < 1 || pos > sp.N() {
		return 0, 0, 0, fmt.Errorf("cn: bad position %q (sentence has %d words)", parts[0], sp.N())
	}
	g := sp.Grammar()
	r, ok := g.RoleByName(parts[1])
	if !ok {
		return 0, 0, 0, fmt.Errorf("cn: unknown role %q", parts[1])
	}
	dash := strings.LastIndexByte(parts[2], '-')
	if dash <= 0 {
		return 0, 0, 0, fmt.Errorf("cn: bad role value %q (want LABEL-mod)", parts[2])
	}
	labName := parts[2][:dash]
	modStr := parts[2][dash+1:]
	lab, ok := g.LabelByName(labName)
	if !ok {
		return 0, 0, 0, fmt.Errorf("cn: unknown label %q", labName)
	}
	labIdx := -1
	for i, l := range g.RoleLabels(r) {
		if l == lab {
			labIdx = i
		}
	}
	if labIdx < 0 {
		return 0, 0, 0, fmt.Errorf("cn: label %q is not in table T for role %q", labName, parts[1])
	}
	mod := cdg.NilMod
	if modStr != "nil" {
		mod, err = strconv.Atoi(modStr)
		if err != nil || mod < 1 || mod > sp.N() {
			return 0, 0, 0, fmt.Errorf("cn: bad modifiee %q", modStr)
		}
	}
	return pos, r, sp.RVIndex(r, labIdx, mod), nil
}
