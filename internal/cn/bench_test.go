package cn

import (
	"fmt"
	"testing"

	"repro/internal/cdg"
	"repro/internal/grammars"
	"repro/internal/workload"
)

func benchNetwork(b *testing.B, n int) (*cdg.Grammar, *cdg.Space) {
	b.Helper()
	g := grammars.PaperDemo()
	sent, err := cdg.Resolve(g, workload.DemoSentence(n), nil)
	if err != nil {
		b.Fatal(err)
	}
	return g, cdg.NewSpace(g, sent)
}

func BenchmarkNetworkConstruction(b *testing.B) {
	for _, n := range []int{5, 10} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			_, sp := benchNetwork(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				New(sp)
			}
		})
	}
}

func BenchmarkApplyBinary(b *testing.B) {
	for _, n := range []int{5, 10} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g, sp := benchNetwork(b, n)
			base := New(sp)
			for _, c := range g.Unary() {
				base.ApplyUnary(c)
			}
			bc := g.Binary()[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				nw := base.Clone()
				b.StartTimer()
				nw.ApplyBinary(bc)
			}
		})
	}
}

func BenchmarkConsistencyPass(b *testing.B) {
	g, sp := benchNetwork(b, 8)
	nw := New(sp)
	for _, c := range g.Unary() {
		nw.ApplyUnary(c)
	}
	for _, c := range g.Binary() {
		nw.ApplyBinary(c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		work := nw.Clone()
		b.StartTimer()
		work.ConsistencyPass()
	}
}

func BenchmarkExtractParses(b *testing.B) {
	g := grammars.English()
	sent, err := cdg.Resolve(g, workload.AmbiguousEnglish(2), nil)
	if err != nil {
		b.Fatal(err)
	}
	nw := New(cdg.NewSpace(g, sent))
	for _, c := range g.Unary() {
		nw.ApplyUnary(c)
	}
	for _, c := range g.Binary() {
		nw.ApplyBinary(c)
		nw.ConsistencyPass()
	}
	nw.Filter(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.ExtractParses(0)
	}
}
