// Package experiments regenerates every table and figure of the
// paper's evaluation (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for the paper-vs-measured record):
//
//	E1 — Figures 1–7: the "The program runs" walkthrough
//	E2 — Figure 8: CFG vs CDG across architectures (measured growth)
//	E3 — §3 timing: MasPar model time vs the serial baseline
//	E4 — §3 virtualization staircase ("grows as n⁴" step function)
//	E5 — §2.1 filtering iterations: English vs the adversarial chain
//	E6 — ablations of the §2.2.1 design decisions
//
// Every experiment returns a plain-text report; cmd/experiments prints
// them and the root bench suite exercises the same code paths under
// testing.B.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Experiment is one regenerable table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func() string
}

// All returns the experiments in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Figures 1-7: constraint-network walkthrough of \"The program runs\"", E1Walkthrough},
		{"E2", "Figure 8: CFG vs CDG parsing across architectures", E2Figure8},
		{"E3", "Section 3: timing on the MasPar MP-1 vs the serial baseline", E3Timing},
		{"E4", "Section 3: processor-virtualization staircase", E4Staircase},
		{"E5", "Sections 1.4/2.1: filtering iterations to fixpoint", E5Filtering},
		{"E6", "Section 2.2.1: design-decision ablations", E6Ablations},
		{"E7", "Beyond the paper: MP-1 family machine-size sweep", E7MachineSize},
		{"E8", "Beyond the paper: filtering algorithms (AC-1 vs AC-4 vs bounded)", E8FilteringAlgorithms},
		{"E9", "Beyond the paper: host-parallel speedup (goroutines as PEs)", E9HostParallel},
	}
}

// ByID returns the experiment with the given (case-insensitive) id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

func header(id, title string) string {
	line := strings.Repeat("=", 72)
	return fmt.Sprintf("%s\n%s — %s\n%s\n", line, id, title, line)
}
