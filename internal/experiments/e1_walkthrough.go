package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cdg"
	"repro/internal/cn"
	"repro/internal/core"
	"repro/internal/grammars"
	"repro/internal/serial"
)

// E1Walkthrough replays the paper's running example and prints the
// network after each phase, matching Figures 1–7.
func E1Walkthrough() string {
	var b strings.Builder
	b.WriteString(header("E1", "walkthrough of \"The program runs\""))

	g := grammars.PaperDemo()
	words := grammars.PaperSentence()
	fmt.Fprintf(&b, "grammar: %d labels, %d roles, %d unary + %d binary constraints\n",
		g.NumLabels(), g.NumRoles(), len(g.Unary()), len(g.Binary()))
	fmt.Fprintf(&b, "sentence: %s\n\n", strings.Join(words, " "))

	type snap struct {
		label string
		text  string
		arc   string
	}
	var snaps []snap
	want := map[string]string{
		"initial":                           "Figure 1: initial network (all role values)",
		"unary:verb-governor":               "Figure 2: after the first unary constraint",
		"after-unary":                       "Figure 3: after unary constraint propagation",
		"binary:subj-governed-by-root":      "Figure 4: after the first binary constraint (before consistency)",
		"consistency:subj-governed-by-root": "Figure 5: after consistency maintenance",
		"after-filtering":                   "Figure 6: final network",
	}
	opt := serial.DefaultOptions()
	opt.Phase = func(label string, nw *cn.Network) {
		title, ok := want[label]
		if !ok {
			return
		}
		s := snap{label: title, text: nw.Render()}
		if label == "binary:subj-governed-by-root" || label == "consistency:subj-governed-by-root" {
			// The governor–governor arc between "program" and "runs",
			// the matrix the paper draws in Figures 4 and 5.
			sp := nw.Space()
			a := sp.GlobalRole(2, 0)
			c := sp.GlobalRole(3, 0)
			s.arc = nw.RenderArc(a, c)
		}
		snaps = append(snaps, s)
	}
	res, err := serial.ParseWords(g, words, opt)
	if err != nil {
		return err.Error()
	}
	for _, s := range snaps {
		fmt.Fprintf(&b, "--- %s ---\n%s", s.label, s.text)
		if s.arc != "" {
			fmt.Fprintf(&b, "\n%s", s.arc)
		}
		b.WriteByte('\n')
	}

	b.WriteString("--- Figure 7: precedence graph ---\n")
	parses := res.Parses(0)
	for _, p := range parses {
		b.WriteString(cn.RenderPrecedenceGraph(p))
	}
	fmt.Fprintf(&b, "\naccepted=%v ambiguous=%v parses=%d\n",
		res.Accepted(), res.Ambiguous(), len(parses))
	fmt.Fprintf(&b, "serial work: %s\n", res.Counters)

	// --- the layout figures (9–13) ---
	sent, err := cdg.Resolve(g, words, nil)
	if err != nil {
		return err.Error()
	}
	sp := cdg.NewSpace(g, sent)

	b.WriteString("\n--- Figure 9: arc matrix before unary propagation (the.governor x program.governor) ---\n")
	fresh := cn.New(sp)
	b.WriteString(fresh.RenderArc(sp.GlobalRole(1, 0), sp.GlobalRole(2, 0)))

	b.WriteString("\n--- Figure 10: OR-then-AND support check of SUBJ-1 (after the first binary constraint) ---\n")
	mid := cn.New(sp)
	for _, c := range g.Unary() {
		mid.ApplyUnary(c)
	}
	mid.ApplyBinary(g.Binary()[0])
	_, r, idx, err := cn.ParseRVSpec(sp, "2.governor.SUBJ-1")
	if err != nil {
		return err.Error()
	}
	b.WriteString(mid.ExplainSupport(2, r, idx))

	ly := core.NewLayout(sp)
	b.WriteString("\n--- Figure 11: PE allocation ---\n")
	b.WriteString(ly.RenderAllocation(sp))

	b.WriteString("\n--- Figure 12: scan segments for program/2.governor mod=nil's column block ---\n")
	gov, _ := g.RoleByName("governor")
	b.WriteString(ly.RenderScanSegments(sp, ly.GroupOf(2, gov, cdg.NilMod)))

	b.WriteString("\n--- Figure 13: the paper's worked example, PE 9 ---\n")
	b.WriteString(ly.RenderPE(sp, 9))
	return b.String()
}
