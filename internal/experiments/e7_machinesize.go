package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/grammars"
	"repro/internal/maspar"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// E7MachineSize goes beyond the paper's single 16K-PE configuration:
// the MP-1 family shipped from 1,024 to 16,384 PEs, and the paper's
// timing formula is entirely a function of how many virtualization
// layers the array forces. This sweep prices the same 10-word parse on
// every machine size — the "which MasPar should the lab buy" table —
// and checks the result is invariant (virtualization never changes the
// parse, only the time).
func E7MachineSize() string {
	var b strings.Builder
	b.WriteString(header("E7", "machine-size sweep (MP-1 family configurations)"))

	g := grammars.PaperDemo()
	words := workload.DemoSentence(10)
	ref, err := core.NewParser(g, core.WithBackend(core.Serial)).Parse(words)
	if err != nil {
		return err.Error()
	}

	sizes := []int{1024, 2048, 4096, 8192, 16384, 32768, 65536}
	type row struct {
		phys   int
		layers uint64
		secs   float64
		same   bool
	}
	var rows []row
	var base float64
	for _, phys := range sizes {
		p := core.NewParser(g, core.WithBackend(core.MasPar),
			core.WithPEs(phys), core.WithMaxFilterIters(3))
		res, err := p.Parse(words)
		if err != nil {
			return err.Error()
		}
		r := row{
			phys:   phys,
			layers: res.Counters.VirtualLayers,
			secs:   res.ModelTime.Seconds(),
			same:   ref.Network.EqualState(res.Network),
		}
		if phys == maspar.PhysicalPEs {
			base = r.secs
		}
		rows = append(rows, r)
	}
	tab := metrics.NewTable("physical PEs", "layers", "model time", "vs 16K", "result identical")
	for _, r := range rows {
		tab.AddRow(r.phys, r.layers, fmt.Sprintf("%.3fs", r.secs),
			fmt.Sprintf("%.2fx", r.secs/base), r.same)
	}
	b.WriteString(tab.String())
	b.WriteString("\nA 10-word sentence needs 40,000 virtual PEs; halving the machine\n" +
		"roughly doubles the layer count and hence the parse time, while the\n" +
		"final network is bit-identical on every configuration (and to the\n" +
		"serial engine).\n")
	return b.String()
}
