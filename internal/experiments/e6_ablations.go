package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/grammars"
	"repro/internal/maspar"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// E6Ablations quantifies three of the §2.2.1 design decisions:
//
//	(a) batched consistency maintenance (run after all constraints,
//	    O(k + log n)) vs one round per constraint (O(k·log n));
//	(b) the global router's O(log P) scans vs a naive O(P) ring
//	    reduction — the feature the paper singles out ("particularly
//	    the global router");
//	(c) the l×l label blocking of Figure 13 vs one arc element per PE,
//	    which needs l²× the PEs and virtualizes correspondingly earlier.
func E6Ablations() string {
	var b strings.Builder
	b.WriteString(header("E6", "design-decision ablations"))

	g := grammars.PaperDemo()

	// (a) consistency scheduling.
	b.WriteString("(a) Consistency scheduling — batched (paper) vs per-constraint:\n")
	ta := metrics.NewTable("n", "variant", "scan ops", "cycles", "model time", "same result")
	for _, n := range []int{3, 5, 7} {
		words := workload.DemoSentence(n)
		batched, err := core.NewParser(g, core.WithBackend(core.MasPar)).Parse(words)
		if err != nil {
			return err.Error()
		}
		perC, err := core.NewParser(g, core.WithBackend(core.MasPar),
			core.WithConsistencyPerConstraint(true)).Parse(words)
		if err != nil {
			return err.Error()
		}
		same := batched.Network.EqualState(perC.Network)
		ta.AddRow(n, "batched (paper)", batched.Counters.ScanOps, batched.Counters.Cycles,
			fmt.Sprintf("%.3fs", batched.ModelTime.Seconds()), same)
		ta.AddRow(n, "per-constraint", perC.Counters.ScanOps, perC.Counters.Cycles,
			fmt.Sprintf("%.3fs", perC.ModelTime.Seconds()), same)
	}
	b.WriteString(ta.String())

	// (b) router scans vs ring reduction: price the identical schedule
	// under a cost model where a scan costs O(P) instead of O(log P).
	b.WriteString("\n(b) Global router (log P scans) vs naive ring reduction (P steps):\n")
	ring := maspar.DefaultCosts()
	ring.ScanPerLevel = 0
	ring.ScanBase = 2 * uint64(maspar.PhysicalPEs) // one traversal of the array
	ring.RouterPerLevel = 0
	ring.RouterBase = 2 * uint64(maspar.PhysicalPEs)
	tb := metrics.NewTable("n", "router model time", "ring model time", "slowdown")
	for _, n := range []int{3, 5, 7, 10} {
		rt := core.PlanMasPar(g, n, maspar.PhysicalPEs, maspar.DefaultCosts(), 3)
		rg := core.PlanMasPar(g, n, maspar.PhysicalPEs, ring, 3)
		tb.AddRow(n,
			fmt.Sprintf("%.3fs", rt.ModelTime.Seconds()),
			fmt.Sprintf("%.3fs", rg.ModelTime.Seconds()),
			fmt.Sprintf("%.1fx", rg.ModelTime.Seconds()/rt.ModelTime.Seconds()))
	}
	b.WriteString(tb.String())

	// (c) PE blocking: l² arc elements per PE vs one per PE.
	b.WriteString("\n(c) Figure-13 blocking (l*l arc elements per PE) vs one element per PE:\n")
	l := g.MaxLabelsPerRole()
	tc := metrics.NewTable("n", "blocked PEs", "blocked layers", "flat PEs", "flat layers")
	for _, n := range []int{3, 5, 7, 10, 12, 16} {
		blocked := core.PlanMasPar(g, n, maspar.PhysicalPEs, maspar.DefaultCosts(), 3)
		flatV := blocked.V * l * l
		flatLayers := (flatV + maspar.PhysicalPEs - 1) / maspar.PhysicalPEs
		tc.AddRow(n, blocked.V, blocked.Layers, flatV, flatLayers)
	}
	b.WriteString(tc.String())
	b.WriteString("\nBlocking delays virtualization by l^2 = " +
		fmt.Sprintf("%d", l*l) +
		"x: at n=7 the blocked layout still fits the 16K array while the\n" +
		"flat layout is already 6 layers deep. This is why each PE owns a\n" +
		"3x3 label submatrix in Figure 13.\n")
	return b.String()
}
