package experiments

import (
	"strings"

	"repro/internal/grammars"
	"repro/internal/metrics"
	"repro/internal/serial"
	"repro/internal/workload"
)

// E8FilteringAlgorithms goes beyond the paper on the filtering question
// it leaves open (§1.4: filtering is optional but "has the potential to
// reduce the search time … without increasing the asymptotic sequential
// running time"): it compares three filtering strategies on work and
// tightness —
//
//	AC-1      the paper's repeated consistency passes, to fixpoint
//	AC-4      support-counted filtering (one pass + cascades)
//	bounded   the MasPar design decision #5 (a constant pass budget)
//
// All three leave the same solution set; AC-1 and AC-4 reach the same
// (tightest) network; bounded may keep extra role values, which is the
// price of the O(k + log n) bound.
func E8FilteringAlgorithms() string {
	var b strings.Builder
	b.WriteString(header("E8", "filtering algorithms: AC-1 vs AC-4 vs bounded"))

	tab := metrics.NewTable("grammar", "n", "algo", "support work", "live values", "same fixpoint")
	for _, tc := range []struct {
		name  string
		ns    []int
		parse func(n int) (*serial.Result, error)
	}{
		{"English", []int{5, 9, 13}, func(n int) (*serial.Result, error) {
			return serial.ParseWords(grammars.English(), workload.EnglishSentence(n), serial.Options{Filter: false})
		}},
		{"Chain", []int{6, 10, 14}, func(n int) (*serial.Result, error) {
			return serial.ParseWords(grammars.Chain(), grammars.ChainSentence(n), serial.Options{Filter: false})
		}},
	} {
		for _, n := range tc.ns {
			res, err := tc.parse(n)
			if err != nil {
				return err.Error()
			}
			ref := res.Network.Clone()
			ref.Filter(0)

			live := func(nw interface{ DomainStrings(int) []string }, roles int) int {
				total := 0
				for gr := 0; gr < roles; gr++ {
					total += len(nw.DomainStrings(gr))
				}
				return total
			}
			roles := res.Network.Space().NumRoles()

			ac1 := res.Network.Clone()
			ac1.Counters.Reset()
			ac1.Filter(0)
			tab.AddRow(tc.name, n, "AC-1 (paper)", ac1.Counters.SupportChecks, live(ac1, roles), ac1.EqualState(ref))

			ac4 := res.Network.Clone()
			ac4.Counters.Reset()
			ac4.FilterAC4()
			tab.AddRow(tc.name, n, "AC-4", ac4.Counters.SupportChecks, live(ac4, roles), ac4.EqualState(ref))

			bounded := res.Network.Clone()
			bounded.Counters.Reset()
			bounded.Filter(3)
			tab.AddRow(tc.name, n, "bounded(3)", bounded.Counters.SupportChecks, live(bounded, roles), bounded.EqualState(ref))
		}
	}
	b.WriteString(tab.String())
	b.WriteString("\nAC-1 and AC-4 always agree; on the chain grammar the 3-pass budget\n" +
		"stops mid-cascade and keeps stale GOOD values alive (looser network,\n" +
		"identical solution set), while its work stays flat in n — the\n" +
		"trade design decision #5 makes to preserve O(k + log n).\n")
	return b.String()
}
