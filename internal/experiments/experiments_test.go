package experiments

import (
	"os"
	"strings"
	"testing"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 9 {
		t.Fatalf("got %d experiments, want 9", len(all))
	}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		got, ok := ByID(strings.ToLower(e.ID))
		if !ok || got.ID != e.ID {
			t.Errorf("ByID(%q) failed", e.ID)
		}
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID should reject unknown ids")
	}
	if len(IDs()) != 9 {
		t.Error("IDs length")
	}
}

func TestE8FilteringAlgorithms(t *testing.T) {
	out := E8FilteringAlgorithms()
	for _, want := range []string{"AC-1 (paper)", "AC-4", "bounded(3)", "English", "Chain"} {
		if !strings.Contains(out, want) {
			t.Errorf("E8 output missing %q", want)
		}
	}
	// AC-1 and AC-4 rows must all reach the fixpoint (no "false" in
	// their rows); the bounded rows on the chain grammar must not.
	lines := strings.Split(out, "\n")
	sawBoundedLoose := false
	for _, l := range lines {
		if strings.Contains(l, "AC-1") || strings.Contains(l, "AC-4") {
			if strings.Contains(l, "false") {
				t.Errorf("exact algorithm missed the fixpoint: %s", l)
			}
		}
		if strings.Contains(l, "bounded") && strings.Contains(l, "Chain") && strings.Contains(l, "false") {
			sawBoundedLoose = true
		}
	}
	if !sawBoundedLoose {
		t.Error("bounded filtering should be loose on the deep chain cascade")
	}
}

func TestE7MachineSizeInvariance(t *testing.T) {
	out := E7MachineSize()
	if strings.Contains(out, "false") {
		t.Errorf("machine size changed the parse result:\n%s", out)
	}
	for _, want := range []string{"1024", "16384", "65536", "layers"} {
		if !strings.Contains(out, want) {
			t.Errorf("E7 output missing %q", want)
		}
	}
}

func TestE1ContainsFigures(t *testing.T) {
	out := E1Walkthrough()
	for _, want := range []string{
		"Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
		"Figure 6", "Figure 7", "Figure 9", "Figure 10", "Figure 11",
		"Figure 12", "Figure 13",
		"SUBJ-3", "ROOT-nil", "DET-2", "NP-1",
		"accepted=true ambiguous=false parses=1",
		// Figure 10's verdict: SUBJ-1 loses support.
		"UNSUPPORTED",
		// Figure 11's PE count and Figure 12's block numbering match
		// the paper's drawings.
		"324 PEs total",
		"PEs    108..   125",
		// Figure 13 / the paper's PE-9 walkthrough.
		"PE 9 (col group 0, row group 9)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("E1 output missing %q", want)
		}
	}
}

// TestE1GoldenFile pins the entire walkthrough output byte-for-byte.
// Regenerate after an intentional rendering change with:
//
//	go run ./cmd/experiments -e E1 > internal/experiments/testdata/e1_golden.txt
func TestE1GoldenFile(t *testing.T) {
	want, err := os.ReadFile("testdata/e1_golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	got := E1Walkthrough() + "\n" // cmd prints with a trailing newline
	if got != string(want) {
		// Find the first divergence for a useful message.
		g, w := got, string(want)
		i := 0
		for i < len(g) && i < len(w) && g[i] == w[i] {
			i++
		}
		lo := i - 80
		if lo < 0 {
			lo = 0
		}
		hiG, hiW := i+80, i+80
		if hiG > len(g) {
			hiG = len(g)
		}
		if hiW > len(w) {
			hiW = len(w)
		}
		t.Errorf("E1 output diverges from golden at byte %d:\n got: …%q…\nwant: …%q…", i, g[lo:hiG], w[lo:hiW])
	}
}

func TestE2ShapeHolds(t *testing.T) {
	out := E2Figure8()
	// The measured exponents appear as n^X.XX; spot-check the claims
	// the table must support.
	for _, want := range []string{
		"Sequential CFG (CKY)",
		"Sequential CDG",
		"CRCW P-RAM CDG",
		"2D mesh CFG",
		"MasPar MP-1 CDG",
		"flat (O(k))",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("E2 output missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "NOT FLAT") {
		t.Error("P-RAM steps were not constant in n")
	}
}

func TestE3Anchors(t *testing.T) {
	out := E3Timing()
	for _, want := range []string{
		"0.15 s", "0.45 s", "per constraint",
		"Paper anchors",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("E3 output missing %q", want)
		}
	}
}

func TestE4StaircaseConsistent(t *testing.T) {
	out := E4Staircase()
	if strings.Contains(out, "plan mismatch") {
		t.Errorf("E4 plan does not match execution:\n%s", out)
	}
	for _, want := range []string{"virtual PEs", "layers", "executed"} {
		if !strings.Contains(out, want) {
			t.Errorf("E4 output missing %q", want)
		}
	}
}

func TestE5BothRegimes(t *testing.T) {
	out := E5Filtering()
	if !strings.Contains(out, "English") || !strings.Contains(out, "Chain") {
		t.Errorf("E5 output incomplete:\n%s", out)
	}
}

func TestE6Ablations(t *testing.T) {
	out := E6Ablations()
	for _, want := range []string{"batched (paper)", "per-constraint", "ring", "blocked"} {
		if !strings.Contains(out, want) {
			t.Errorf("E6 output missing %q", want)
		}
	}
	if strings.Contains(out, "false") {
		t.Errorf("E6(a) variants disagreed on the final network:\n%s", out)
	}
}
