package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/grammars"
	"repro/internal/metrics"
	"repro/internal/serial"
	"repro/internal/workload"
)

// E3Timing reproduces the paper's §3 measurements. Absolute numbers
// come from the calibrated MP-1 cycle model (12.5 MHz, EXPERIMENTS.md
// documents the calibration); the serial column is the host-measured
// reference implementation. The paper's anchors:
//
//	< 10 ms to propagate one constraint, networks of 1–7 words
//	total parse time (⌊42n/144⌋+1)·0.15 s — 0.15 s at n=3, 0.45 s at n=10
//	serial (SPARCstation 1): 15 s per constraint, ~3 min for 7 words
func E3Timing() string {
	var b strings.Builder
	b.WriteString(header("E3", "timing: simulated MP-1 vs serial baseline"))

	g := grammars.PaperDemo()
	k := g.NumConstraints()

	tab := metrics.NewTable("n", "virtual PEs", "layers",
		"MP-1 model time", "per-constraint", "serial host time", "serial checks")
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 10, 12} {
		words := workload.DemoSentence(n)
		var masparTime time.Duration
		var pes, layers uint64
		if g.NumRoles()*n >= 2 {
			p := core.NewParser(g, core.WithBackend(core.MasPar), core.WithMaxFilterIters(3))
			res, err := p.Parse(words)
			if err != nil {
				return err.Error()
			}
			masparTime = res.ModelTime
			pes = res.Counters.Processors
			layers = res.Counters.VirtualLayers
		}

		start := time.Now()
		sres, err := serial.ParseWords(g, words, serial.DefaultOptions())
		if err != nil {
			return err.Error()
		}
		hostTime := time.Since(start)

		tab.AddRow(n, pes, layers,
			fmt.Sprintf("%.3fs", masparTime.Seconds()),
			fmt.Sprintf("%.1fms", masparTime.Seconds()/float64(k)*1000),
			hostTime.Round(time.Microsecond).String(),
			sres.Counters.ConstraintChecks)
	}
	b.WriteString(tab.String())

	b.WriteString("\nPaper anchors vs this reproduction:\n")
	anchors := metrics.NewTable("Quantity", "Paper (1992)", "Reproduction", "Note")
	p3 := modelTime(g, 3)
	p10 := modelTime(g, 10)
	anchors.AddRow("parse, 3 words (MP-1)", "0.15 s", fmt.Sprintf("%.3f s", p3), "1 virtualization layer")
	anchors.AddRow("parse, 10 words (MP-1)", "0.45 s", fmt.Sprintf("%.3f s", p10), "3 layers; exactly 3x the 3-word time")
	anchors.AddRow("per constraint, <=7 words", "< 10 ms", fmt.Sprintf("%.1f ms", p3/float64(g.NumConstraints())*1000), "amortized over k=10")
	anchors.AddRow("serial per constraint", "15 s (SPARC-1)", "(host-dependent, see table)", "1990 absolute times are not reproducible; shape is")
	anchors.AddRow("serial, 7 words", "~3 min (SPARC-1)", "(host-dependent, see table)", "serial/parallel work ratio preserved")
	b.WriteString(anchors.String())
	b.WriteString("\nShape checks: the MP-1 column is flat for n=1..7 (single layer),\n" +
		"and the 10-word time is exactly 3x the 3-word time — the paper's\n" +
		"(floor(42n/144)+1)*0.15s staircase with our layer count in place of\n" +
		"the 42n/144 fit.\n")
	return b.String()
}

func modelTime(g interface {
	NumRoles() int
	NumConstraints() int
}, n int) float64 {
	gr := grammars.PaperDemo()
	p := core.NewParser(gr, core.WithBackend(core.MasPar), core.WithMaxFilterIters(3))
	res, err := p.Parse(workload.DemoSentence(n))
	if err != nil {
		return 0
	}
	return res.ModelTime.Seconds()
}
