package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/grammars"
	"repro/internal/hostpar"
	"repro/internal/metrics"
	"repro/internal/serial"
	"repro/internal/workload"
)

// E9HostParallel replays the paper's thesis on the machine you are
// sitting at: constraint propagation is embarrassingly parallel, so a
// multicore host should show real wall-clock speedup over the serial
// engine on the same O(k·n⁴) work. This is the 2020s analogue of the
// MasPar column of Figure 8 — same algorithm, goroutines instead of
// PEs, measured rather than modeled.
func E9HostParallel() string {
	var b strings.Builder
	b.WriteString(header("E9", "host-parallel speedup (goroutines as PEs)"))
	fmt.Fprintf(&b, "host: GOMAXPROCS=%d\n\n", runtime.GOMAXPROCS(0))

	g := grammars.PaperDemo()
	tab := metrics.NewTable("n", "serial", "1 worker", "all cores", "speedup", "identical")
	for _, n := range []int{8, 12, 16} {
		words := workload.DemoSentence(n)

		t0 := time.Now()
		sres, err := serial.ParseWords(g, words, serial.DefaultOptions())
		if err != nil {
			return err.Error()
		}
		serialT := time.Since(t0)

		t0 = time.Now()
		one, err := hostpar.ParseWords(g, words, hostpar.Options{Workers: 1, Filter: true})
		if err != nil {
			return err.Error()
		}
		oneT := time.Since(t0)

		t0 = time.Now()
		all, err := hostpar.ParseWords(g, words, hostpar.DefaultOptions())
		if err != nil {
			return err.Error()
		}
		allT := time.Since(t0)

		same := sres.Network.EqualState(all.Network) && sres.Network.EqualState(one.Network)
		tab.AddRow(n,
			serialT.Round(time.Microsecond).String(),
			oneT.Round(time.Microsecond).String(),
			allT.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1fx", float64(serialT)/float64(allT)),
			same)
	}
	b.WriteString(tab.String())
	b.WriteString("\nOne-shot timings wobble with the scheduler; `go test -bench\n" +
		"BenchmarkE9` gives the statistically settled numbers. The point is\n" +
		"the paper's: the same constraint network, fanned out over whatever\n" +
		"parallel hardware is at hand, parses faster — 16K 4-bit PEs then,\n" +
		"a handful of cores now.\n")
	return b.String()
}
