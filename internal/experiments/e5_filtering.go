package experiments

import (
	"strings"

	"repro/internal/grammars"
	"repro/internal/metrics"
	"repro/internal/serial"
	"repro/internal/workload"
)

// E5Filtering measures consistency-maintenance rounds to fixpoint. The
// paper's claims (§1.4, §2.1): filtering can take O(n²) time in the
// worst case (they even prove an NC-hardness reduction), but "we have
// found that very few filtering steps (typically fewer than 10) are
// required" on English grammars — which justifies design decision #5
// (a constant iteration bound on the MasPar). We verify both halves:
// the English grammar's round count is a small constant, and the
// adversarial chain grammar cascades Θ(n) rounds.
func E5Filtering() string {
	var b strings.Builder
	b.WriteString(header("E5", "filtering iterations to fixpoint"))

	eng := grammars.English()
	tab := metrics.NewTable("grammar", "n", "filter rounds", "eliminations", "accepted")
	for _, n := range []int{3, 5, 7, 9, 11, 13} {
		res, err := serial.ParseWords(eng, workload.EnglishSentence(n), serial.DefaultOptions())
		if err != nil {
			return err.Error()
		}
		tab.AddRow("English", n, res.Counters.FilterIterations, res.Counters.Eliminations, res.Accepted())
	}
	chain := grammars.Chain()
	for _, n := range []int{3, 5, 7, 9, 11, 13} {
		res, err := serial.ParseWords(chain, grammars.ChainSentence(n), serial.DefaultOptions())
		if err != nil {
			return err.Error()
		}
		tab.AddRow("Chain (adversarial)", n, res.Counters.FilterIterations, res.Counters.Eliminations, res.Accepted())
	}
	b.WriteString(tab.String())
	b.WriteString("\nEnglish settles in a small constant number of rounds regardless of n\n" +
		"(the paper's \"typically fewer than 10\"), while the chain grammar's\n" +
		"eliminations cascade one link per round — the Θ(n) worst case that\n" +
		"motivates bounding filtering on the MasPar (design decision #5).\n")
	return b.String()
}
