package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/grammars"
	"repro/internal/maspar"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// E4Staircase reproduces the §3 claim that parse time "would look like
// a discrete step function which grows as n⁴": processor virtualization
// multiplies the whole schedule by ⌈(q·n²)²/16384⌉ layers. Small n runs
// execute on the simulator; larger n use the cycle-exact analytic plan
// (TestPlanMatchesExecution pins plan == execution).
func E4Staircase() string {
	var b strings.Builder
	b.WriteString(header("E4", "processor-virtualization staircase"))

	g := grammars.PaperDemo()
	costs := maspar.DefaultCosts()
	const rounds = 3

	tab := metrics.NewTable("n", "virtual PEs", "layers", "model time", "", "source")
	maxLayersShown := 0
	for n := 1; n <= 40; n++ {
		plan := core.PlanMasPar(g, n, maspar.PhysicalPEs, costs, rounds)
		src := "plan"
		if n <= 10 && g.NumRoles()*n >= 2 {
			p := core.NewParser(g, core.WithBackend(core.MasPar), core.WithMaxFilterIters(rounds))
			res, err := p.Parse(demoWords(n))
			if err == nil && res.Counters.FilterIterations == rounds {
				src = "executed"
				if res.Counters.Cycles != plan.Cycles {
					src = "executed (plan mismatch!)"
				}
			} else if err == nil {
				src = fmt.Sprintf("executed (rounds=%d)", res.Counters.FilterIterations)
			}
		}
		bar := strings.Repeat("#", min(plan.Layers, 60))
		tab.AddRow(n, plan.V, plan.Layers, fmt.Sprintf("%.3fs", plan.ModelTime.Seconds()), bar, src)
		if plan.Layers > maxLayersShown {
			maxLayersShown = plan.Layers
		}
	}
	b.WriteString(tab.String())
	b.WriteString(fmt.Sprintf("\nSteps occur exactly where (2n^2)^2 crosses multiples of 16384:\n"+
		"n<=7 is one layer (the paper's 0.15 s regime), n=8..9 two layers,\n"+
		"n=10..11 three layers (the paper's 0.45 s point at n=10), and the\n"+
		"envelope grows as n^4 — max layers shown: %d.\n", maxLayersShown))
	return b.String()
}

func demoWords(n int) []string { return workload.DemoSentence(n) }
