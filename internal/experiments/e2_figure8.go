package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/grammars"
	"repro/internal/meshcdg"
	"repro/internal/metrics"
	"repro/internal/pram"
	"repro/internal/serial"
	"repro/internal/workload"
)

// E2Figure8 reproduces the paper's architecture-comparison table. The
// paper's entries are asymptotic; we print them alongside *measured*
// growth: elementary-operation counts swept over n and fitted in
// log–log space. The reproduction claim is about shape — each measured
// exponent must match the table's power of n.
func E2Figure8() string {
	var b strings.Builder
	b.WriteString(header("E2", "Figure 8 — CFG vs CDG parsing across architectures"))

	// The paper's table, verbatim.
	paper := metrics.NewTable("Architecture", "CFG #PEs", "CFG time", "CDG #PEs", "CDG time")
	paper.AddRow("Sequential machine", "1", "O(k n^3)", "1", "O(k n^4)")
	paper.AddRow("CRCW P-RAM", "O(n^6)", "O(log^2 n)", "O(n^4)", "O(k)")
	paper.AddRow("2D mesh / cellular automata", "O(n^2)", "O(k n)", "O(n^2)", "O(k + n^2)")
	paper.AddRow("Tree and hypercube (MasPar)", "—", "—", "O(n^4/log n)", "O(k + log n)")
	b.WriteString("Paper (asymptotic):\n")
	b.WriteString(paper.String())
	b.WriteString("\nMeasured on this reproduction (growth exponents fitted log-log):\n")

	ns := []int{4, 6, 8, 10, 12}
	measured := metrics.NewTable("Row", "Metric", "n sweep", "Fitted growth", "Paper")

	// Sequential CFG: CKY elementary rule applications.
	cg := cfg.Random(7, 6, 4, 14)
	var ckySamples []metrics.Sample
	for _, n := range ns {
		res, err := cfg.CKY(cg, cfg.RandomString(cg, uint64(n)*13, n))
		if err != nil {
			return err.Error()
		}
		ckySamples = append(ckySamples, metrics.Sample{N: n, Cost: float64(res.Ops)})
	}
	if e, ok := metrics.FitExponent(ckySamples); ok {
		measured.AddRow("Sequential CFG (CKY)", "rule ops", sweep(ckySamples), fmt.Sprintf("n^%.2f", e), "n^3")
	}

	// Sequential CDG: constraint checks + matrix writes.
	var cdgSamples []metrics.Sample
	g := grammars.PaperDemo()
	for _, n := range ns {
		res, err := serial.ParseWords(g, workload.DemoSentence(n), serial.DefaultOptions())
		if err != nil {
			return err.Error()
		}
		cost := float64(res.Counters.ConstraintChecks + res.Counters.MatrixWrites)
		cdgSamples = append(cdgSamples, metrics.Sample{N: n, Cost: cost})
	}
	if e, ok := metrics.FitExponent(cdgSamples); ok {
		measured.AddRow("Sequential CDG", "checks+writes", sweep(cdgSamples), fmt.Sprintf("n^%.2f", e), "n^4")
	}

	// CRCW P-RAM CDG: steps must be flat in n; processors grow n^4.
	var steps []uint64
	var procSamples []metrics.Sample
	for _, n := range ns {
		res, err := pram.ParseWords(g, workload.DemoSentence(n),
			pram.Options{Policy: pram.Common, Filter: true, MaxFilterIters: 3})
		if err != nil {
			return err.Error()
		}
		steps = append(steps, res.Machine.Steps)
		procSamples = append(procSamples, metrics.Sample{N: n, Cost: float64(res.Counters.Processors)})
	}
	flat := "flat"
	for _, s := range steps[1:] {
		if s != steps[0] {
			flat = "NOT FLAT"
		}
	}
	measured.AddRow("CRCW P-RAM CDG", "steps", fmt.Sprintf("%v", steps), flat+" (O(k))", "O(k)")
	if e, ok := metrics.FitExponent(procSamples); ok {
		measured.AddRow("CRCW P-RAM CDG", "processors", sweep(procSamples), fmt.Sprintf("n^%.2f", e), "n^4")
	}

	// CRCW P-RAM CFG: the span wavefront keeps steps Ω(n) (Ruzzo's
	// log²n bound needs tree contraction and O(n⁶) processors; we
	// implement the natural O(n)-step CRCW CKY and report it).
	var cfgSteps []metrics.Sample
	for _, n := range ns {
		res, err := pram.CKY(cg, cfg.RandomString(cg, uint64(n)*13, n), pram.Common)
		if err != nil {
			return err.Error()
		}
		cfgSteps = append(cfgSteps, metrics.Sample{N: n, Cost: float64(res.Steps)})
	}
	if e, ok := metrics.FitExponent(cfgSteps); ok {
		measured.AddRow("CRCW P-RAM CFG (CKY)", "steps", sweep(cfgSteps), fmt.Sprintf("n^%.2f", e), "log^2 n (Ruzzo); ours n^1")
	}

	// 2D mesh cellular automaton CFG: ticks linear, cells quadratic.
	var tickSamples, cellSamples []metrics.Sample
	for _, n := range ns {
		res, err := cfg.Mesh(cg, cfg.RandomString(cg, uint64(n)*29, n))
		if err != nil {
			return err.Error()
		}
		tickSamples = append(tickSamples, metrics.Sample{N: n, Cost: float64(res.Ticks)})
		cellSamples = append(cellSamples, metrics.Sample{N: n, Cost: float64(res.Cells)})
	}
	if e, ok := metrics.FitExponent(tickSamples); ok {
		measured.AddRow("2D mesh CFG (systolic CKY)", "ticks", sweep(tickSamples), fmt.Sprintf("n^%.2f", e), "n^1 (O(k n))")
	}
	if e, ok := metrics.FitExponent(cellSamples); ok {
		measured.AddRow("2D mesh CFG (systolic CKY)", "cells", sweep(cellSamples), fmt.Sprintf("n^%.2f", e), "n^2")
	}

	// 2D mesh CDG: O(n²) cells, ticks fit ~n² (the n² term of the
	// table's O(k + n²)).
	var meshSteps, meshCells []metrics.Sample
	for _, n := range ns {
		res, err := meshcdg.ParseWords(g, workload.DemoSentence(n),
			meshcdg.Options{Filter: true, MaxFilterIters: 3})
		if err != nil {
			return err.Error()
		}
		meshSteps = append(meshSteps, metrics.Sample{N: n, Cost: float64(res.Steps)})
		meshCells = append(meshCells, metrics.Sample{N: n, Cost: float64(res.Cells)})
	}
	if e, ok := metrics.FitExponent(meshSteps); ok {
		measured.AddRow("2D mesh CDG", "ticks", sweep(meshSteps), fmt.Sprintf("n^%.2f", e), "n^2 (O(k + n^2))")
	}
	if e, ok := metrics.FitExponent(meshCells); ok {
		measured.AddRow("2D mesh CDG", "cells", sweep(meshCells), fmt.Sprintf("n^%.2f", e), "n^2")
	}

	// MasPar CDG: cycles flat in n while V ≤ P (log P constant on a
	// fixed machine), stepping with virtualization.
	var cyc []uint64
	var layers []uint64
	for _, n := range []int{3, 5, 7, 10, 12} {
		p := core.NewParser(g, core.WithBackend(core.MasPar), core.WithMaxFilterIters(3))
		res, err := p.Parse(workload.DemoSentence(n))
		if err != nil {
			return err.Error()
		}
		cyc = append(cyc, res.Counters.Cycles)
		layers = append(layers, res.Counters.VirtualLayers)
	}
	measured.AddRow("MasPar MP-1 CDG", "cycles", fmt.Sprintf("%v", cyc),
		fmt.Sprintf("layers %v", layers), "O(k + log n)")

	b.WriteString(measured.String())
	b.WriteString("\nReading: serial CDG grows one power of n faster than serial CFG\n" +
		"(n^4 vs n^3); the P-RAM removes n entirely at O(n^4) processors; the\n" +
		"MasPar holds cycles constant until the PE array is exhausted, then\n" +
		"steps with the virtualization layer count (see E4).\n")
	return b.String()
}

func sweep(samples []metrics.Sample) string {
	var parts []string
	for _, s := range samples {
		parts = append(parts, fmt.Sprintf("%.0f", s.Cost))
	}
	return strings.Join(parts, " ")
}
