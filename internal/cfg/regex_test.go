package cfg

import (
	"regexp"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/serial"
)

func dfaAccepts(t *testing.T, d *DFA, s string) bool {
	t.Helper()
	cats := make([]int, len(s))
	for i := 0; i < len(s); i++ {
		c := -1
		for ci, name := range d.Cats {
			if name == string(s[i]) {
				c = ci
			}
		}
		if c < 0 {
			return false
		}
		cats[i] = c
	}
	return d.Run(cats)
}

func TestCompileRegexBasics(t *testing.T) {
	for _, tc := range []struct {
		pattern string
		yes     []string
		no      []string
	}{
		{"ab", []string{"ab"}, []string{"a", "b", "ba", "abb", ""}},
		{"a|b", []string{"a", "b"}, []string{"ab", ""}},
		{"a*b", []string{"b", "ab", "aaab"}, []string{"a", "ba"}},
		{"a+b?", []string{"a", "ab", "aaa", "aaab"}, []string{"b", "abb", ""}},
		{"(ab)+", []string{"ab", "abab"}, []string{"a", "aba"}},
		{"a(b|c)*d", []string{"ad", "abd", "acbd", "abcbcd"}, []string{"a", "d", "abc"}},
	} {
		d, err := CompileRegex(tc.pattern)
		if err != nil {
			t.Fatalf("%q: %v", tc.pattern, err)
		}
		for _, s := range tc.yes {
			if !dfaAccepts(t, d, s) {
				t.Errorf("%q should accept %q", tc.pattern, s)
			}
		}
		for _, s := range tc.no {
			if dfaAccepts(t, d, s) {
				t.Errorf("%q should reject %q", tc.pattern, s)
			}
		}
	}
}

func TestCompileRegexErrors(t *testing.T) {
	for _, pattern := range []string{
		"", "(", ")", "a)", "(a", "*a", "|a", "a||b", "A", "a-b", "a**b(",
	} {
		if _, err := CompileRegex(pattern); err == nil {
			t.Errorf("CompileRegex(%q): expected error", pattern)
		}
	}
	// a** is actually legal (idempotent star) — make sure it compiles.
	if _, err := CompileRegex("a**"); err != nil {
		t.Errorf("a** should compile: %v", err)
	}
}

// randomPattern builds a small random regex over {a,b} plus operators.
func randomPattern(seed uint64) string {
	r := newRNG(seed)
	var build func(depth int) string
	build = func(depth int) string {
		if depth <= 0 || r.Intn(3) == 0 {
			return string(byte('a' + r.Intn(2)))
		}
		switch r.Intn(4) {
		case 0:
			return build(depth-1) + build(depth-1)
		case 1:
			return "(" + build(depth-1) + "|" + build(depth-1) + ")"
		case 2:
			return "(" + build(depth-1) + ")*"
		default:
			return "(" + build(depth-1) + ")?"
		}
	}
	return build(3)
}

// TestQuickRegexMatchesStdlib compares the DFA with Go's regexp on
// random patterns and strings.
func TestQuickRegexMatchesStdlib(t *testing.T) {
	f := func(seed uint64) bool {
		pattern := randomPattern(seed)
		d, err := CompileRegex(pattern)
		if err != nil {
			t.Logf("compile %q: %v", pattern, err)
			return false
		}
		re, err := regexp.Compile("^(" + pattern + ")$")
		if err != nil {
			t.Logf("stdlib compile %q: %v", pattern, err)
			return false
		}
		r := newRNG(seed * 40503)
		for trial := 0; trial < 8; trial++ {
			n := r.Intn(6) + 1 // nonempty: CDG/DFA comparison domain
			var sb strings.Builder
			for i := 0; i < n; i++ {
				sb.WriteByte(byte('a' + r.Intn(2)))
			}
			s := sb.String()
			want := re.MatchString(s)
			got := dfaAccepts(t, d, s)
			// Strings containing letters outside the pattern's
			// alphabet are rejected by the DFA but may…no: stdlib
			// anchors to a/b too since pattern only has a/b literals.
			if got != want {
				t.Logf("pattern %q string %q: dfa=%v stdlib=%v", pattern, s, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestRegexToCDGEndToEnd drives the full pipeline: regex → DFA → CDG →
// parse, against the stdlib verdict.
func TestRegexToCDGEndToEnd(t *testing.T) {
	g, err := RegexToCDG("a(b|c)*d")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		s    string
		want bool
	}{
		{"ad", true},
		{"abcd", true},
		{"abbbcd", true},
		{"a", false},
		{"abc", false},
		{"da", false},
	} {
		words := strings.Split(tc.s, "")
		res, err := serial.ParseWords(g, words, serial.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Network.HasParse(); got != tc.want {
			t.Errorf("CDG(a(b|c)*d)(%q) = %v, want %v", tc.s, got, tc.want)
		}
	}
}

// TestQuickRegexToCDGMatchesStdlib is the full-pipeline property test:
// regex → DFA → CDG acceptance equals stdlib regexp acceptance.
func TestQuickRegexToCDGMatchesStdlib(t *testing.T) {
	f := func(seed uint64) bool {
		pattern := randomPattern(seed)
		g, err := RegexToCDG(pattern)
		if err != nil {
			t.Logf("RegexToCDG(%q): %v", pattern, err)
			return false
		}
		re := regexp.MustCompile("^(" + pattern + ")$")
		r := newRNG(seed*31 + 7)
		for trial := 0; trial < 3; trial++ {
			n := r.Intn(4) + 1
			var sb strings.Builder
			for i := 0; i < n; i++ {
				sb.WriteByte(byte('a' + r.Intn(2)))
			}
			s := sb.String()
			words := strings.Split(s, "")
			res, err := serial.ParseWords(g, words, serial.DefaultOptions())
			if err != nil {
				// Unknown word: the pattern's alphabet may lack 'b'.
				if re.MatchString(s) {
					t.Logf("pattern %q: %q unparseable but stdlib matches", pattern, s)
					return false
				}
				continue
			}
			if got, want := res.Network.HasParse(), re.MatchString(s); got != want {
				t.Logf("pattern %q string %q: cdg=%v stdlib=%v", pattern, s, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
