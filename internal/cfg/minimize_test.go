package cfg

import (
	"testing"
	"testing/quick"
)

func TestMinimizeCollapsesDuplicateStates(t *testing.T) {
	// States 1 and 2 are equivalent (both accept, both loop to
	// themselves on a).
	d := &DFA{
		NumStates: 3,
		Start:     0,
		Accept:    []bool{false, true, true},
		Cats:      []string{"a"},
		Delta: [][]int{
			{1},
			{2},
			{1},
		},
	}
	m := Minimize(d)
	if m.NumStates != 2 {
		t.Errorf("minimized to %d states, want 2", m.NumStates)
	}
	// Language must be preserved: a, aa, aaa… all accepted; empty not.
	for length := 1; length <= 5; length++ {
		cats := make([]int, length)
		if !m.Run(cats) {
			t.Errorf("a^%d should be accepted", length)
		}
	}
	if m.Run(nil) {
		t.Error("empty string should be rejected")
	}
}

func TestMinimizeRemovesUnreachable(t *testing.T) {
	d := &DFA{
		NumStates: 3,
		Start:     0,
		Accept:    []bool{false, true, true},
		Cats:      []string{"a"},
		Delta: [][]int{
			{1},
			{-1},
			{1}, // unreachable
		},
	}
	m := Minimize(d)
	if m.NumStates != 2 {
		t.Errorf("minimized to %d states, want 2 (unreachable dropped)", m.NumStates)
	}
}

func TestMinimizeEmptyLanguage(t *testing.T) {
	d := &DFA{
		NumStates: 2,
		Start:     0,
		Accept:    []bool{false, false},
		Cats:      []string{"a", "b"},
		Delta:     [][]int{{1, 1}, {0, 0}},
	}
	m := Minimize(d)
	if m.NumStates != 1 || m.Accept[0] {
		t.Errorf("empty language should minimize to one rejecting state, got %+v", m)
	}
	if m.Run([]int{0, 1}) {
		t.Error("must reject everything")
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
}

func TestMinimizeRegexDFA(t *testing.T) {
	// (a|b)*abb — the classic; its minimal DFA has 4 states.
	d, err := CompileRegex("(a|b)*abb")
	if err != nil {
		t.Fatal(err)
	}
	m := Minimize(d)
	if m.NumStates != 4 {
		t.Errorf("minimal DFA for (a|b)*abb has 4 states, got %d (from %d)", m.NumStates, d.NumStates)
	}
	if m.NumStates > d.NumStates {
		t.Error("minimization grew the DFA")
	}
}

// TestQuickMinimizePreservesLanguage: the minimized DFA agrees with the
// original on random strings, and never has more states.
func TestQuickMinimizePreservesLanguage(t *testing.T) {
	f := func(seed uint64) bool {
		d := randomDFA(seed)
		m := Minimize(d)
		if err := m.Validate(); err != nil {
			t.Logf("invalid minimized DFA: %v", err)
			return false
		}
		if m.NumStates > d.NumStates+1 {
			t.Logf("minimize grew: %d -> %d", d.NumStates, m.NumStates)
			return false
		}
		r := newRNG(seed*131 + 17)
		for trial := 0; trial < 12; trial++ {
			n := r.Intn(7)
			cats := make([]int, n)
			for i := range cats {
				cats[i] = r.Intn(len(d.Cats))
			}
			if d.Run(cats) != m.Run(cats) {
				t.Logf("seed %d: disagreement on %v", seed, cats)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMinimizeIdempotent: minimizing twice changes nothing.
func TestQuickMinimizeIdempotent(t *testing.T) {
	f := func(seed uint64) bool {
		m1 := Minimize(randomDFA(seed))
		m2 := Minimize(m1)
		return m2.NumStates == m1.NumStates
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestMinimizedCDGSmaller: minimization shrinks the derived CDG's label
// alphabet (the MasPar l).
func TestMinimizedCDGSmaller(t *testing.T) {
	d, err := CompileRegex("(a|b)*abb")
	if err != nil {
		t.Fatal(err)
	}
	gBig, err := ToCDG(d)
	if err != nil {
		t.Fatal(err)
	}
	gSmall, err := ToCDG(Minimize(d))
	if err != nil {
		t.Fatal(err)
	}
	if gSmall.NumLabels() >= gBig.NumLabels() {
		t.Errorf("labels: minimized %d vs raw %d", gSmall.NumLabels(), gBig.NumLabels())
	}
}
