// Package cfg provides the context-free-grammar substrate used by the
// paper's architecture-comparison table (Figure 8): CNF grammars, the
// serial CKY recognizer (the table's O(k·n³) sequential CFG row), an
// Earley recognizer (cross-check), a two-dimensional mesh
// cellular-automaton CKY in the style of Kosaraju 1975 (the table's
// O(k·n)-time, O(n²)-cell row), a random CNF grammar generator for
// differential testing, and an encoder from regular grammars into CDG
// (a machine-checkable fragment of Maruyama's result that CDG subsumes
// CFGs; the canonical context-free and non-context-free CDG grammars
// live in internal/grammars).
package cfg

import (
	"fmt"
	"sort"
	"strings"
)

// NT is a nonterminal index.
type NT int

// BinRule is A → B C.
type BinRule struct {
	A, B, C NT
}

// TermRule is A → t for terminal index t.
type TermRule struct {
	A    NT
	Term int
}

// Grammar is a context-free grammar in Chomsky normal form. Terminals
// are interned strings; nonterminal 0 is not special — Start names the
// start symbol.
type Grammar struct {
	ntNames []string
	terms   []string
	termIdx map[string]int
	Start   NT
	Bin     []BinRule
	Term    []TermRule
	// binByBC[B*len(nt)+C] lists rule heads A with A → B C, for CKY's
	// inner loop.
	binByBC map[int][]NT
}

// NewGrammar builds a validated CNF grammar. ntNames supplies the
// nonterminal alphabet; start must be one of them.
func NewGrammar(ntNames []string, start string) (*Grammar, error) {
	if len(ntNames) == 0 {
		return nil, fmt.Errorf("cfg: no nonterminals")
	}
	g := &Grammar{
		ntNames: append([]string(nil), ntNames...),
		termIdx: map[string]int{},
		binByBC: map[int][]NT{},
	}
	seen := map[string]bool{}
	for _, n := range ntNames {
		if seen[n] {
			return nil, fmt.Errorf("cfg: duplicate nonterminal %q", n)
		}
		seen[n] = true
	}
	s, ok := g.ntByName(start)
	if !ok {
		return nil, fmt.Errorf("cfg: start symbol %q is not a declared nonterminal", start)
	}
	g.Start = s
	return g, nil
}

func (g *Grammar) ntByName(name string) (NT, bool) {
	for i, n := range g.ntNames {
		if n == name {
			return NT(i), true
		}
	}
	return 0, false
}

// NumNT returns the nonterminal count.
func (g *Grammar) NumNT() int { return len(g.ntNames) }

// NTName returns nonterminal a's name.
func (g *Grammar) NTName(a NT) string { return g.ntNames[a] }

// NumRules returns |P| (the paper's k for CFG parsing).
func (g *Grammar) NumRules() int { return len(g.Bin) + len(g.Term) }

// Terminals returns the interned terminal alphabet.
func (g *Grammar) Terminals() []string { return append([]string(nil), g.terms...) }

// InternTerm returns (creating if needed) the index of terminal t.
func (g *Grammar) InternTerm(t string) int {
	if i, ok := g.termIdx[t]; ok {
		return i
	}
	i := len(g.terms)
	g.terms = append(g.terms, t)
	g.termIdx[t] = i
	return i
}

// TermIndex returns the index of terminal t, or -1 if unknown.
func (g *Grammar) TermIndex(t string) int {
	if i, ok := g.termIdx[t]; ok {
		return i
	}
	return -1
}

// AddBin adds A → B C by nonterminal names.
func (g *Grammar) AddBin(a, b, c string) error {
	A, ok := g.ntByName(a)
	if !ok {
		return fmt.Errorf("cfg: unknown nonterminal %q", a)
	}
	B, ok := g.ntByName(b)
	if !ok {
		return fmt.Errorf("cfg: unknown nonterminal %q", b)
	}
	C, ok := g.ntByName(c)
	if !ok {
		return fmt.Errorf("cfg: unknown nonterminal %q", c)
	}
	g.Bin = append(g.Bin, BinRule{A, B, C})
	key := int(B)*len(g.ntNames) + int(C)
	g.binByBC[key] = append(g.binByBC[key], A)
	return nil
}

// AddTerm adds A → t.
func (g *Grammar) AddTerm(a, t string) error {
	A, ok := g.ntByName(a)
	if !ok {
		return fmt.Errorf("cfg: unknown nonterminal %q", a)
	}
	g.Term = append(g.Term, TermRule{A: A, Term: g.InternTerm(t)})
	return nil
}

// HeadsFor returns the rule heads A with A → B C (do not mutate).
func (g *Grammar) HeadsFor(b, c NT) []NT {
	return g.binByBC[int(b)*len(g.ntNames)+int(c)]
}

// PreterminalSet returns the bitset-as-bools of nonterminals deriving
// terminal index t in one step.
func (g *Grammar) PreterminalSet(t int) []bool {
	out := make([]bool, len(g.ntNames))
	for _, r := range g.Term {
		if r.Term == t {
			out[r.A] = true
		}
	}
	return out
}

// String renders the grammar compactly for diagnostics.
func (g *Grammar) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "start %s\n", g.ntNames[g.Start])
	for _, r := range g.Bin {
		fmt.Fprintf(&b, "%s -> %s %s\n", g.ntNames[r.A], g.ntNames[r.B], g.ntNames[r.C])
	}
	rules := make([]string, 0, len(g.Term))
	for _, r := range g.Term {
		rules = append(rules, fmt.Sprintf("%s -> %q", g.ntNames[r.A], g.terms[r.Term]))
	}
	sort.Strings(rules)
	for _, r := range rules {
		b.WriteString(r)
		b.WriteByte('\n')
	}
	return b.String()
}

// rng is a tiny deterministic generator for the random-grammar and
// random-string helpers (xorshift64*; stdlib-only and reproducible).
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// Intn returns a value in [0, n).
func (r *rng) Intn(n int) int { return int(r.next() % uint64(n)) }

// Random builds a random CNF grammar with the given shape, useful for
// differential testing of the recognizers. All nonterminals get at
// least one terminal rule so most are productive.
func Random(seed uint64, numNT, numTerms, numBin int) *Grammar {
	r := newRNG(seed)
	names := make([]string, numNT)
	for i := range names {
		names[i] = fmt.Sprintf("N%d", i)
	}
	g, err := NewGrammar(names, names[0])
	if err != nil {
		panic(err)
	}
	terms := make([]string, numTerms)
	for i := range terms {
		terms[i] = fmt.Sprintf("t%d", i)
	}
	for i := 0; i < numNT; i++ {
		if err := g.AddTerm(names[i], terms[r.Intn(numTerms)]); err != nil {
			panic(err)
		}
	}
	for i := 0; i < numBin; i++ {
		if err := g.AddBin(names[r.Intn(numNT)], names[r.Intn(numNT)], names[r.Intn(numNT)]); err != nil {
			panic(err)
		}
	}
	return g
}

// RandomString draws a length-n string over g's terminal alphabet.
func RandomString(g *Grammar, seed uint64, n int) []string {
	r := newRNG(seed)
	terms := g.Terminals()
	if len(terms) == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = terms[r.Intn(len(terms))]
	}
	return out
}
