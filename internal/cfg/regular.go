package cfg

import (
	"fmt"
	"strings"

	"repro/internal/cdg"
)

// DFA is a deterministic finite automaton over word categories. It is
// the source formalism for ToCDG, the executable fragment of Maruyama's
// expressivity result (§1.5: CDG subsumes CFGs; here we machine-derive
// CDG grammars for the regular subclass and verify them differentially,
// while internal/grammars provides hand-built CDG grammars for
// canonical context-free and super-context-free languages).
type DFA struct {
	NumStates int
	Start     int
	Accept    []bool
	// Cats is the input alphabet; Delta[state][cat] is the successor
	// state or -1 for reject.
	Cats  []string
	Delta [][]int
}

// Validate checks structural sanity.
func (d *DFA) Validate() error {
	if d.NumStates <= 0 {
		return fmt.Errorf("cfg: DFA needs at least one state")
	}
	if d.Start < 0 || d.Start >= d.NumStates {
		return fmt.Errorf("cfg: DFA start state %d out of range", d.Start)
	}
	if len(d.Accept) != d.NumStates {
		return fmt.Errorf("cfg: DFA accept vector has %d entries for %d states", len(d.Accept), d.NumStates)
	}
	if len(d.Delta) != d.NumStates {
		return fmt.Errorf("cfg: DFA delta has %d rows for %d states", len(d.Delta), d.NumStates)
	}
	for s, row := range d.Delta {
		if len(row) != len(d.Cats) {
			return fmt.Errorf("cfg: DFA delta row %d has %d entries for %d categories", s, len(row), len(d.Cats))
		}
		for c, to := range row {
			if to < -1 || to >= d.NumStates {
				return fmt.Errorf("cfg: DFA delta[%d][%d] = %d out of range", s, c, to)
			}
		}
	}
	return nil
}

// Run reports whether the DFA accepts the category sequence.
func (d *DFA) Run(cats []int) bool {
	s := d.Start
	for _, c := range cats {
		if c < 0 || c >= len(d.Cats) {
			return false
		}
		s = d.Delta[s][c]
		if s < 0 {
			return false
		}
	}
	return d.Accept[s]
}

// ToCDG compiles the DFA into a CDG grammar that accepts exactly the
// same strings (as sequences of one word per category, the word being
// the category name). The encoding threads the DFA state through the
// sentence:
//
//   - role "state" of word i carries ⟨Q_s, i+1⟩ where s is the DFA
//     state after consuming words 1..i; the final word carries ⟨Q_s, nil⟩.
//   - unary constraints pin word 1's state, force non-final words to
//     point right, and require the final state to be accepting;
//   - binary constraints make the pointer chain adjacent (nothing may
//     sit strictly between a word and its modifiee) and enforce the
//     transition function between adjacent words.
//
// The constraint count is |Q|·|Σ| + O(|Q|) — a grammatical constant, as
// CDG requires.
func ToCDG(d *DFA) (*cdg.Grammar, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	stateLabel := func(s int) string { return fmt.Sprintf("Q%d", s) }

	b := cdg.NewBuilder()
	labels := make([]string, 0, d.NumStates+1)
	for s := 0; s < d.NumStates; s++ {
		labels = append(labels, stateLabel(s))
	}
	labels = append(labels, "IDLE")
	b.Labels(labels...)
	b.Categories(d.Cats...)
	b.Role("state", labels[:d.NumStates]...)
	b.Role("aux", "IDLE")
	for _, c := range d.Cats {
		b.Word(c, c)
	}

	// The aux role is inert: IDLE-nil always.
	b.Constraint("aux-idle", `
		(if (eq (role x) aux)
		    (and (eq (lab x) IDLE) (eq (mod x) nil)))`)

	// Non-final words point right; the chain pointer is mandatory
	// except at the end of the sentence.
	b.Constraint("state-points-right", `
		(if (and (eq (role x) state) (not (eq (mod x) nil)))
		    (gt (mod x) (pos x)))`)

	// A nil pointer is only legal on the last word: any word to the
	// right refutes it.
	b.Constraint("nil-only-at-end", `
		(if (and (eq (role x) state) (eq (mod x) nil) (gt (pos y) (pos x)))
		    (lt (pos x) (pos x)))`)

	// Adjacency: nothing sits strictly between a word and its modifiee.
	b.Constraint("chain-adjacent", `
		(if (and (eq (role x) state) (not (eq (mod x) nil))
		         (gt (pos y) (pos x)) (lt (pos y) (mod x)))
		    (lt (pos x) (pos x)))`)

	// Word 1 must carry the state reached from the start state on its
	// own category.
	for c, cat := range d.Cats {
		to := d.Delta[d.Start][c]
		cons := "(lt (pos x) (pos x))" // reject
		if to >= 0 {
			cons = fmt.Sprintf("(eq (lab x) %s)", stateLabel(to))
		}
		b.Constraint(fmt.Sprintf("start-%s", cat), fmt.Sprintf(`
			(if (and (eq (role x) state) (eq (pos x) 1)
			         (eq (cat (word (pos x))) %s))
			    %s)`, cat, cons))
	}

	// Transition function between adjacent words: if word x in state q
	// points at word y of category c, then y's state is δ(q, c).
	for s := 0; s < d.NumStates; s++ {
		for c, cat := range d.Cats {
			to := d.Delta[s][c]
			cons := "(lt (pos x) (pos x))"
			if to >= 0 {
				cons = fmt.Sprintf("(eq (lab y) %s)", stateLabel(to))
			}
			b.Constraint(fmt.Sprintf("delta-%s-%s", stateLabel(s), cat), fmt.Sprintf(`
				(if (and (eq (role x) state) (eq (role y) state)
				         (eq (lab x) %s) (eq (mod x) (pos y))
				         (eq (cat (word (pos y))) %s))
				    %s)`, stateLabel(s), cat, cons))
		}
	}

	// The chain's final state (the nil pointer) must be accepting.
	var accepting []string
	for s := 0; s < d.NumStates; s++ {
		if d.Accept[s] {
			accepting = append(accepting, fmt.Sprintf("(eq (lab x) %s)", stateLabel(s)))
		}
	}
	var cons string
	switch len(accepting) {
	case 0:
		cons = "(lt (pos x) (pos x))"
	case 1:
		cons = accepting[0]
	default:
		cons = "(or " + strings.Join(accepting, " ") + ")"
	}
	b.Constraint("final-accepting", fmt.Sprintf(`
		(if (and (eq (role x) state) (eq (mod x) nil)) %s)`, cons))

	return b.Build()
}
