package cfg

import "fmt"

// MeshResult reports the systolic recognizer's verdict and cost.
type MeshResult struct {
	Accepted bool
	// Ticks is the number of synchronous automaton steps until
	// quiescence — the Figure-8 quantity O(k·n) (each tick applies the
	// whole rule set once per cell; we count ticks and rule ops
	// separately).
	Ticks uint64
	// Cells is the number of automaton cells, O(n²).
	Cells uint64
	// Ops counts elementary rule applications across all cells/ticks.
	Ops uint64
}

// message is a completed span's nonterminal set in flight along a row
// (moving right) or a column (moving up).
type message struct {
	k   int // the split endpoint: row messages carry T[i,k], column messages T[k,j]
	set []bool
}

// meshCell is one automaton cell computing T[i,j].
type meshCell struct {
	i, j int
	// rowHave[k] / colHave[k] are the arrived halves for split k.
	rowHave map[int][]bool
	colHave map[int][]bool
	set     []bool
	pending int // splits not yet combined
	done    bool
	// outbound buffers for the next tick.
	outRow []message // to (i, j+1)
	outCol []message // to (i-1, j)
}

// Mesh runs CKY on a simulated two-dimensional mesh cellular automaton
// in the style the paper's Figure 8 attributes to Kosaraju 1975: one
// cell per chart span (O(n²) cells), nearest-neighbor communication
// only (completed spans travel one cell per tick, rightward along their
// row and upward along their column), O(k·n) recognition time.
//
// Cell memory grows with n in this simulator (arrived halves are
// buffered per split); the real construction interleaves streams to
// keep cells finite — the time and cell counts, which are what the
// experiment measures, are unaffected.
func Mesh(g *Grammar, words []string) (*MeshResult, error) {
	n := len(words)
	if n == 0 {
		return nil, fmt.Errorf("cfg: empty input")
	}
	res := &MeshResult{}
	nt := g.NumNT()

	cells := make(map[[2]int]*meshCell, n*(n+1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j <= n; j++ {
			cells[[2]int{i, j}] = &meshCell{
				i: i, j: j,
				rowHave: map[int][]bool{},
				colHave: map[int][]bool{},
				set:     make([]bool, nt),
				pending: j - i - 1,
			}
		}
	}
	res.Cells = uint64(len(cells))

	// Tick 0: the diagonal cells hold the preterminal sets and emit.
	for i, w := range words {
		t := g.TermIndex(w)
		if t < 0 {
			return nil, fmt.Errorf("cfg: word %q (position %d) is not in the terminal alphabet", w, i+1)
		}
		c := cells[[2]int{i, i + 1}]
		c.set = g.PreterminalSet(t)
		res.Ops += uint64(len(g.Term))
		c.done = true
		c.emit()
	}

	// combine applies every binary rule to one (left, right) pair.
	combine := func(c *meshCell, left, right []bool) {
		for _, r := range g.Bin {
			res.Ops++
			if left[r.B] && right[r.C] {
				c.set[r.A] = true
			}
		}
	}

	for {
		// Delivery phase: move every outbound message one cell.
		moved := false
		type delivery struct {
			to  [2]int
			row bool
			msg message
		}
		var deliveries []delivery
		for _, c := range cells {
			for _, m := range c.outRow {
				if to, ok := cells[[2]int{c.i, c.j + 1}]; ok {
					deliveries = append(deliveries, delivery{to: [2]int{to.i, to.j}, row: true, msg: m})
				}
			}
			for _, m := range c.outCol {
				if to, ok := cells[[2]int{c.i - 1, c.j}]; ok {
					deliveries = append(deliveries, delivery{to: [2]int{to.i, to.j}, row: false, msg: m})
				}
			}
			c.outRow, c.outCol = nil, nil
		}
		if len(deliveries) == 0 {
			break
		}
		res.Ticks++
		for _, d := range deliveries {
			moved = true
			c := cells[d.to]
			if d.row {
				c.rowHave[d.msg.k] = d.msg.set
				// forward along the row
				c.outRow = append(c.outRow, d.msg)
			} else {
				c.colHave[d.msg.k] = d.msg.set
				c.outCol = append(c.outCol, d.msg)
			}
		}
		// Compute phase: combine newly complete halves; a cell that
		// finishes all its splits completes and emits.
		for _, c := range cells {
			if c.done {
				continue
			}
			for k := c.i + 1; k < c.j; k++ {
				left, lok := c.rowHave[k]
				right, rok := c.colHave[k]
				if lok && rok {
					combine(c, left, right)
					delete(c.rowHave, k)
					delete(c.colHave, k)
					c.pending--
				}
			}
			if c.pending == 0 {
				c.done = true
				c.emit()
			}
		}
		if !moved {
			break
		}
	}

	top := cells[[2]int{0, n}]
	res.Accepted = top.set[g.Start]
	return res, nil
}

// emit queues the completed set onto both streams.
func (c *meshCell) emit() {
	// T[i,j] travels right along row i (as the left half for splits at
	// k=j) and up along column j (as the right half for splits at k=i).
	c.outRow = append(c.outRow, message{k: c.j, set: c.set})
	c.outCol = append(c.outCol, message{k: c.i, set: c.set})
}
