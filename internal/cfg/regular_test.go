package cfg

import (
	"testing"
	"testing/quick"

	"repro/internal/serial"
)

// evenAs is a 2-state DFA over {a,b} accepting strings with an even
// number of a's.
func evenAs() *DFA {
	return &DFA{
		NumStates: 2,
		Start:     0,
		Accept:    []bool{true, false},
		Cats:      []string{"a", "b"},
		Delta: [][]int{
			{1, 0},
			{0, 1},
		},
	}
}

// aThenB accepts a⁺b⁺.
func aThenB() *DFA {
	return &DFA{
		NumStates: 3,
		Start:     0,
		Accept:    []bool{false, false, true},
		Cats:      []string{"a", "b"},
		Delta: [][]int{
			{1, -1}, // start: need an a
			{1, 2},  // in a-run
			{-1, 2}, // in b-run
		},
	}
}

func cdgAccepts(t *testing.T, d *DFA, words []string) bool {
	t.Helper()
	g, err := ToCDG(d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := serial.ParseWords(g, words, serial.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res.Network.HasParse()
}

func TestToCDGEvenAs(t *testing.T) {
	d := evenAs()
	for _, tc := range []struct {
		words []string
		want  bool
	}{
		{[]string{"b"}, true},
		{[]string{"a"}, false},
		{[]string{"a", "a"}, true},
		{[]string{"a", "b", "a"}, true},
		{[]string{"a", "b", "b"}, false},
		{[]string{"b", "b", "b", "b"}, true},
		{[]string{"a", "a", "a"}, false},
	} {
		if got := cdgAccepts(t, d, tc.words); got != tc.want {
			t.Errorf("CDG(evenAs)(%v) = %v, want %v", tc.words, got, tc.want)
		}
	}
}

func TestToCDGAThenB(t *testing.T) {
	d := aThenB()
	for _, tc := range []struct {
		words []string
		want  bool
	}{
		{[]string{"a", "b"}, true},
		{[]string{"a", "a", "b", "b", "b"}, true},
		{[]string{"b", "a"}, false},
		{[]string{"a"}, false},
		{[]string{"b"}, false},
		{[]string{"a", "b", "a"}, false},
	} {
		if got := cdgAccepts(t, d, tc.words); got != tc.want {
			t.Errorf("CDG(a+b+)(%v) = %v, want %v", tc.words, got, tc.want)
		}
	}
}

func TestToCDGNoAcceptingStates(t *testing.T) {
	d := &DFA{
		NumStates: 1,
		Start:     0,
		Accept:    []bool{false},
		Cats:      []string{"a"},
		Delta:     [][]int{{0}},
	}
	if cdgAccepts(t, d, []string{"a", "a"}) {
		t.Error("DFA with no accepting states must reject everything")
	}
}

func TestDFAValidate(t *testing.T) {
	bad := []*DFA{
		{NumStates: 0},
		{NumStates: 1, Start: 2, Accept: []bool{true}, Cats: []string{"a"}, Delta: [][]int{{0}}},
		{NumStates: 1, Start: 0, Accept: []bool{}, Cats: []string{"a"}, Delta: [][]int{{0}}},
		{NumStates: 1, Start: 0, Accept: []bool{true}, Cats: []string{"a"}, Delta: [][]int{}},
		{NumStates: 1, Start: 0, Accept: []bool{true}, Cats: []string{"a"}, Delta: [][]int{{5}}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
		if _, err := ToCDG(d); err == nil {
			t.Errorf("case %d: ToCDG should reject invalid DFA", i)
		}
	}
}

// randomDFA derives a small DFA deterministically from a seed.
func randomDFA(seed uint64) *DFA {
	r := newRNG(seed)
	states := 2 + r.Intn(3)
	cats := []string{"a", "b"}
	d := &DFA{
		NumStates: states,
		Start:     r.Intn(states),
		Accept:    make([]bool, states),
		Cats:      cats,
		Delta:     make([][]int, states),
	}
	anyAccept := false
	for s := 0; s < states; s++ {
		d.Accept[s] = r.Intn(2) == 0
		anyAccept = anyAccept || d.Accept[s]
		d.Delta[s] = make([]int, len(cats))
		for c := range cats {
			// Occasional reject transitions exercise the dead-path
			// constraints.
			if r.Intn(5) == 0 {
				d.Delta[s][c] = -1
			} else {
				d.Delta[s][c] = r.Intn(states)
			}
		}
	}
	if !anyAccept {
		d.Accept[0] = true
	}
	return d
}

// TestQuickToCDGMatchesDFA is the weak-equivalence property test: the
// derived CDG grammar accepts a string iff the DFA does.
func TestQuickToCDGMatchesDFA(t *testing.T) {
	f := func(seed uint64) bool {
		d := randomDFA(seed)
		g, err := ToCDG(d)
		if err != nil {
			t.Logf("ToCDG: %v", err)
			return false
		}
		r := newRNG(seed * 977)
		for trial := 0; trial < 4; trial++ {
			n := 1 + r.Intn(5)
			words := make([]string, n)
			cats := make([]int, n)
			for i := range words {
				c := r.Intn(len(d.Cats))
				cats[i] = c
				words[i] = d.Cats[c]
			}
			want := d.Run(cats)
			res, err := serial.ParseWords(g, words, serial.DefaultOptions())
			if err != nil {
				t.Logf("parse: %v", err)
				return false
			}
			if got := res.Network.HasParse(); got != want {
				t.Logf("seed=%d words=%v: CDG=%v DFA=%v", seed, words, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
