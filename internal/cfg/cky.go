package cfg

import "fmt"

// CKYResult carries the recognizer verdict and its work accounting.
type CKYResult struct {
	Accepted bool
	// Ops counts elementary rule applications — the quantity behind
	// the Figure-8 row "Sequential machine: O(k·n³)".
	Ops uint64
	// Chart[i][j][A] reports whether A derives words[i:j] (i inclusive,
	// j exclusive, j > i).
	Chart [][][]bool
}

// CKY runs the Cocke–Kasami–Younger recognizer: O(|P|·n³) time, the
// sequential CFG baseline of Figure 8.
func CKY(g *Grammar, words []string) (*CKYResult, error) {
	n := len(words)
	if n == 0 {
		return nil, fmt.Errorf("cfg: empty input")
	}
	res := &CKYResult{}
	nt := g.NumNT()
	chart := make([][][]bool, n+1)
	for i := range chart {
		chart[i] = make([][]bool, n+1)
		for j := range chart[i] {
			chart[i][j] = make([]bool, nt)
		}
	}
	for i, w := range words {
		t := g.TermIndex(w)
		if t < 0 {
			return nil, fmt.Errorf("cfg: word %q (position %d) is not in the terminal alphabet", w, i+1)
		}
		for _, r := range g.Term {
			res.Ops++
			if r.Term == t {
				chart[i][i+1][r.A] = true
			}
		}
	}
	for span := 2; span <= n; span++ {
		for i := 0; i+span <= n; i++ {
			j := i + span
			row := chart[i][j]
			for k := i + 1; k < j; k++ {
				left, right := chart[i][k], chart[k][j]
				for _, r := range g.Bin {
					res.Ops++
					if left[r.B] && right[r.C] {
						row[r.A] = true
					}
				}
			}
		}
	}
	res.Chart = chart
	res.Accepted = chart[0][n][g.Start]
	return res, nil
}
