package cfg

import "fmt"

// Earley runs an Earley recognizer over the CNF grammar. It exists as
// an independently-implemented cross-check for CKY in the differential
// tests (two recognizers, one truth).
func Earley(g *Grammar, words []string) (bool, error) {
	n := len(words)
	if n == 0 {
		return false, fmt.Errorf("cfg: empty input")
	}
	for i, w := range words {
		if g.TermIndex(w) < 0 {
			return false, fmt.Errorf("cfg: word %q (position %d) is not in the terminal alphabet", w, i+1)
		}
	}

	// Items: for binary rules A→B C, dot positions 0..2; for terminal
	// rules A→t, dot 0..1. An item is (rule id, dot, origin).
	type item struct {
		rule   int // index into rules: [0,len(Bin)) binary, then terminal
		dot    int
		origin int
	}
	numBin := len(g.Bin)

	sets := make([]map[item]bool, n+1)
	order := make([][]item, n+1)
	add := func(s int, it item) {
		if sets[s] == nil {
			sets[s] = map[item]bool{}
		}
		if !sets[s][it] {
			sets[s][it] = true
			order[s] = append(order[s], it)
		}
	}

	// predict schedules every rule for nonterminal a in set s; add()
	// deduplicates, so re-prediction is a no-op.
	predict := func(s int, a NT) {
		for ri, r := range g.Bin {
			if r.A == a {
				add(s, item{rule: ri, dot: 0, origin: s})
			}
		}
		for ri, r := range g.Term {
			if r.A == a {
				add(s, item{rule: numBin + ri, dot: 0, origin: s})
			}
		}
	}

	// head/next return the rule's lhs and the symbol after the dot
	// (nonterminal or terminal), with kind flags.
	headOf := func(rule int) NT {
		if rule < numBin {
			return g.Bin[rule].A
		}
		return g.Term[rule-numBin].A
	}
	complete := func(rule, dot int) bool {
		if rule < numBin {
			return dot == 2
		}
		return dot == 1
	}

	predict(0, g.Start)

	for s := 0; s <= n; s++ {
		// Process the set to closure (scans feed set s+1; in CNF there
		// are no epsilon rules, so completions never extend their own
		// origin set mid-walk).
		for idx := 0; idx < len(order[s]); idx++ {
			it := order[s][idx]
			if complete(it.rule, it.dot) {
				// Completer: advance items in origin waiting on headOf.
				a := headOf(it.rule)
				for _, wait := range order[it.origin] {
					if complete(wait.rule, wait.dot) || wait.rule >= numBin {
						continue
					}
					r := g.Bin[wait.rule]
					var need NT
					if wait.dot == 0 {
						need = r.B
					} else {
						need = r.C
					}
					if need == a {
						add(s, item{rule: wait.rule, dot: wait.dot + 1, origin: wait.origin})
					}
				}
				continue
			}
			if it.rule < numBin {
				// Predictor on the nonterminal after the dot.
				r := g.Bin[it.rule]
				var need NT
				if it.dot == 0 {
					need = r.B
				} else {
					need = r.C
				}
				predict(s, need)
				continue
			}
			// Terminal rule with dot 0: scanner.
			if s < n {
				r := g.Term[it.rule-numBin]
				if r.Term == g.TermIndex(words[s]) {
					add(s+1, item{rule: it.rule, dot: 1, origin: it.origin})
				}
			}
		}
	}
	for _, it := range order[n] {
		if complete(it.rule, it.dot) && headOf(it.rule) == g.Start && it.origin == 0 {
			return true, nil
		}
	}
	return false, nil
}
