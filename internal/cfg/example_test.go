package cfg_test

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/serial"
)

// ExampleCKY recognizes aⁿbⁿ with the serial baseline of Figure 8.
func ExampleCKY() {
	g, _ := cfg.NewGrammar([]string{"S", "X", "A", "B"}, "S")
	_ = g.AddBin("S", "A", "X")
	_ = g.AddBin("S", "A", "B")
	_ = g.AddBin("X", "S", "B")
	_ = g.AddTerm("A", "a")
	_ = g.AddTerm("B", "b")
	for _, words := range [][]string{
		{"a", "a", "b", "b"},
		{"a", "b", "b"},
	} {
		res, _ := cfg.CKY(g, words)
		fmt.Println(words, res.Accepted)
	}
	// Output:
	// [a a b b] true
	// [a b b] false
}

// ExampleRegexToCDG compiles a regular expression all the way to a CDG
// grammar and parses with it — the executable §1.5 pipeline.
func ExampleRegexToCDG() {
	g, err := cfg.RegexToCDG("a(b|c)*d")
	if err != nil {
		panic(err)
	}
	for _, s := range [][]string{
		{"a", "b", "c", "d"},
		{"a", "d"},
		{"a", "b"},
	} {
		res, err := serial.ParseWords(g, s, serial.DefaultOptions())
		if err != nil {
			panic(err)
		}
		fmt.Println(s, res.Network.HasParse())
	}
	// Output:
	// [a b c d] true
	// [a d] true
	// [a b] false
}

// ExampleMinimize shrinks the subset-construction DFA for the classic
// (a|b)*abb to its 4-state minimum.
func ExampleMinimize() {
	d, _ := cfg.CompileRegex("(a|b)*abb")
	m := cfg.Minimize(d)
	fmt.Println("states:", d.NumStates, "->", m.NumStates)
	// Output:
	// states: 5 -> 4
}
