package cfg

// A small regular-expression compiler: pattern → Thompson NFA → subset-
// construction DFA. Combined with ToCDG this machine-derives a CDG
// grammar for any regular language over word categories — the pipeline
// regex → DFA → CDG exercised by the differential tests against Go's
// regexp package.
//
// Syntax: single-letter literals, concatenation, '|' alternation,
// '(…)' grouping, and the postfix operators '*', '+', '?'. The empty
// string matches only via operators (e.g. "a*"), never as a bare
// pattern; CDG sentences are nonempty anyway.

import (
	"fmt"
	"sort"

	"repro/internal/cdg"
)

// nfa states are numbered; transitions are either epsilon or on one
// symbol (a byte literal).
type nfa struct {
	// eps[s] lists epsilon successors of s.
	eps map[int][]int
	// step[s][c] lists successors of s on symbol c.
	step  map[int]map[byte][]int
	start int
	acc   int
	next  int
	// alphabet collects every literal in the pattern.
	alphabet map[byte]bool
}

func newNFA() *nfa {
	return &nfa{
		eps:      map[int][]int{},
		step:     map[int]map[byte][]int{},
		alphabet: map[byte]bool{},
	}
}

func (n *nfa) state() int {
	s := n.next
	n.next++
	return s
}

func (n *nfa) addEps(from, to int) { n.eps[from] = append(n.eps[from], to) }

func (n *nfa) addStep(from int, c byte, to int) {
	if n.step[from] == nil {
		n.step[from] = map[byte][]int{}
	}
	n.step[from][c] = append(n.step[from][c], to)
	n.alphabet[c] = true
}

// frag is a partial NFA with one entry and one exit state.
type frag struct{ in, out int }

// regexParser is a recursive-descent parser producing NFA fragments.
type regexParser struct {
	src string
	pos int
	n   *nfa
}

func (p *regexParser) errf(format string, args ...any) error {
	return fmt.Errorf("cfg: regex %q at offset %d: %s", p.src, p.pos, fmt.Sprintf(format, args...))
}

func (p *regexParser) peek() (byte, bool) {
	if p.pos >= len(p.src) {
		return 0, false
	}
	return p.src[p.pos], true
}

// alternation := concat ('|' concat)*
func (p *regexParser) alternation() (frag, error) {
	f, err := p.concat()
	if err != nil {
		return frag{}, err
	}
	for {
		c, ok := p.peek()
		if !ok || c != '|' {
			return f, nil
		}
		p.pos++
		g, err := p.concat()
		if err != nil {
			return frag{}, err
		}
		in, out := p.n.state(), p.n.state()
		p.n.addEps(in, f.in)
		p.n.addEps(in, g.in)
		p.n.addEps(f.out, out)
		p.n.addEps(g.out, out)
		f = frag{in, out}
	}
}

// concat := repeat repeat*
func (p *regexParser) concat() (frag, error) {
	f, err := p.repeat()
	if err != nil {
		return frag{}, err
	}
	for {
		c, ok := p.peek()
		if !ok || c == '|' || c == ')' {
			return f, nil
		}
		g, err := p.repeat()
		if err != nil {
			return frag{}, err
		}
		p.n.addEps(f.out, g.in)
		f = frag{f.in, g.out}
	}
}

// repeat := atom ('*' | '+' | '?')*
func (p *regexParser) repeat() (frag, error) {
	f, err := p.atom()
	if err != nil {
		return frag{}, err
	}
	for {
		c, ok := p.peek()
		if !ok {
			return f, nil
		}
		switch c {
		case '*':
			p.pos++
			in, out := p.n.state(), p.n.state()
			p.n.addEps(in, f.in)
			p.n.addEps(in, out)
			p.n.addEps(f.out, f.in)
			p.n.addEps(f.out, out)
			f = frag{in, out}
		case '+':
			p.pos++
			out := p.n.state()
			p.n.addEps(f.out, f.in)
			p.n.addEps(f.out, out)
			f = frag{f.in, out}
		case '?':
			p.pos++
			in, out := p.n.state(), p.n.state()
			p.n.addEps(in, f.in)
			p.n.addEps(in, out)
			p.n.addEps(f.out, out)
			f = frag{in, out}
		default:
			return f, nil
		}
	}
}

// atom := literal | '(' alternation ')'
func (p *regexParser) atom() (frag, error) {
	c, ok := p.peek()
	if !ok {
		return frag{}, p.errf("unexpected end of pattern")
	}
	switch c {
	case '(':
		p.pos++
		f, err := p.alternation()
		if err != nil {
			return frag{}, err
		}
		if c2, ok := p.peek(); !ok || c2 != ')' {
			return frag{}, p.errf("missing ')'")
		}
		p.pos++
		return f, nil
	case ')', '|', '*', '+', '?':
		return frag{}, p.errf("unexpected %q", string(c))
	default:
		if c < 'a' || c > 'z' {
			return frag{}, p.errf("literals must be lowercase letters, got %q", string(c))
		}
		p.pos++
		in, out := p.n.state(), p.n.state()
		p.n.addStep(in, c, out)
		return frag{in, out}, nil
	}
}

// CompileRegex compiles pattern into a DFA over its literal alphabet
// (each letter becomes one category).
func CompileRegex(pattern string) (*DFA, error) {
	if pattern == "" {
		return nil, fmt.Errorf("cfg: empty regex")
	}
	p := &regexParser{src: pattern, n: newNFA()}
	f, err := p.alternation()
	if err != nil {
		return nil, err
	}
	if p.pos != len(pattern) {
		return nil, p.errf("trailing input")
	}
	p.n.start, p.n.acc = f.in, f.out
	return p.n.determinize()
}

// closure expands a state set through epsilon edges.
func (n *nfa) closure(set map[int]bool) {
	var stack []int
	for s := range set {
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.eps[s] {
			if !set[t] {
				set[t] = true
				stack = append(stack, t)
			}
		}
	}
}

func setKey(set map[int]bool) string {
	ids := make([]int, 0, len(set))
	for s := range set {
		ids = append(ids, s)
	}
	sort.Ints(ids)
	key := make([]byte, 0, len(ids)*3)
	for _, id := range ids {
		key = append(key, byte(id), byte(id>>8), ',')
	}
	return string(key)
}

// determinize runs the subset construction.
func (n *nfa) determinize() (*DFA, error) {
	letters := make([]byte, 0, len(n.alphabet))
	for c := range n.alphabet {
		letters = append(letters, c)
	}
	sort.Slice(letters, func(i, j int) bool { return letters[i] < letters[j] })
	if len(letters) == 0 {
		return nil, fmt.Errorf("cfg: regex has no literals (matches only the empty string)")
	}
	cats := make([]string, len(letters))
	catOf := map[byte]int{}
	for i, c := range letters {
		cats[i] = string(c)
		catOf[c] = i
	}

	start := map[int]bool{n.start: true}
	n.closure(start)
	index := map[string]int{setKey(start): 0}
	sets := []map[int]bool{start}
	var delta [][]int
	var accept []bool

	for i := 0; i < len(sets); i++ {
		cur := sets[i]
		row := make([]int, len(letters))
		for li, c := range letters {
			next := map[int]bool{}
			for s := range cur {
				for _, t := range n.step[s][c] {
					next[t] = true
				}
			}
			if len(next) == 0 {
				row[li] = -1
				continue
			}
			n.closure(next)
			key := setKey(next)
			id, ok := index[key]
			if !ok {
				id = len(sets)
				index[key] = id
				sets = append(sets, next)
			}
			row[li] = id
		}
		delta = append(delta, row)
		accept = append(accept, cur[n.acc])
	}

	d := &DFA{
		NumStates: len(sets),
		Start:     0,
		Accept:    accept,
		Cats:      cats,
		Delta:     delta,
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// RegexToCDG compiles a regular expression straight into a CDG grammar
// over one-letter word categories: the full §1.5 pipeline for the
// regular fragment (regex → NFA → DFA → constraints).
func RegexToCDG(pattern string) (*cdg.Grammar, error) {
	d, err := CompileRegex(pattern)
	if err != nil {
		return nil, err
	}
	return ToCDG(d)
}
