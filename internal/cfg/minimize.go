package cfg

import "sort"

// Minimize returns an equivalent DFA with the minimum number of states
// (Moore's partition-refinement algorithm over the completed
// automaton, with the dead state stripped again afterwards). For the
// regex → DFA → CDG pipeline this matters directly: CDG labels are DFA
// states, and the MasPar engine's per-PE work grows with l², so fewer
// states mean a cheaper parse.
func Minimize(d *DFA) *DFA {
	// Work over a completed automaton: add an explicit dead state so
	// every transition is defined.
	n := d.NumStates
	dead := n
	total := n + 1
	nc := len(d.Cats)
	delta := make([][]int, total)
	for s := 0; s < n; s++ {
		delta[s] = make([]int, nc)
		for c := 0; c < nc; c++ {
			to := d.Delta[s][c]
			if to < 0 {
				to = dead
			}
			delta[s][c] = to
		}
	}
	delta[dead] = make([]int, nc)
	for c := 0; c < nc; c++ {
		delta[dead][c] = dead
	}
	accept := make([]bool, total)
	copy(accept, d.Accept)

	// Remove unreachable states from consideration by marking them
	// dead-equivalent (they can never matter, and keeping them could
	// split classes spuriously).
	reach := make([]bool, total)
	stack := []int{d.Start}
	reach[d.Start] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for c := 0; c < nc; c++ {
			t := delta[s][c]
			if !reach[t] {
				reach[t] = true
				stack = append(stack, t)
			}
		}
	}

	// Moore refinement: start with accept/reject classes (unreachable
	// states are binned with the dead state).
	class := make([]int, total)
	for s := 0; s < total; s++ {
		switch {
		case !reach[s]:
			class[s] = 0 // with dead; harmless
		case accept[s]:
			class[s] = 1
		default:
			class[s] = 0
		}
	}
	if !reach[dead] {
		reach[dead] = true // keep the dead state as the 0-class anchor
	}

	for {
		// Signature: (class, class of successor per symbol).
		type sig struct {
			base int
			key  string
		}
		sigOf := make([]sig, total)
		for s := 0; s < total; s++ {
			key := make([]byte, 0, nc*2)
			for c := 0; c < nc; c++ {
				cl := class[delta[s][c]]
				key = append(key, byte(cl), byte(cl>>8))
			}
			sigOf[s] = sig{base: class[s], key: string(key)}
		}
		next := map[sig]int{}
		newClass := make([]int, total)
		for s := 0; s < total; s++ {
			id, ok := next[sigOf[s]]
			if !ok {
				id = len(next)
				next[sigOf[s]] = id
			}
			newClass[s] = id
		}
		same := true
		for s := 0; s < total; s++ {
			if newClass[s] != class[s] {
				same = false
				break
			}
		}
		class = newClass
		if same {
			break
		}
	}

	// Rebuild: one state per class with a *reachable* member, excluding
	// the dead class. Unreachable states may refine into classes of
	// their own, but those classes must not materialize — they would
	// make Minimize non-idempotent.
	deadClass := class[dead]
	// Stable ordering: classes by their minimum reachable member.
	minMember := map[int]int{}
	for s := total - 1; s >= 0; s-- {
		if reach[s] {
			minMember[class[s]] = s
		}
	}
	var classes []int
	for cl := range minMember {
		if cl != deadClass {
			classes = append(classes, cl)
		}
	}
	sort.Slice(classes, func(i, j int) bool { return minMember[classes[i]] < minMember[classes[j]] })
	id := map[int]int{}
	for i, cl := range classes {
		id[cl] = i
	}

	out := &DFA{
		NumStates: len(classes),
		Start:     id[class[d.Start]],
		Accept:    make([]bool, len(classes)),
		Cats:      append([]string(nil), d.Cats...),
		Delta:     make([][]int, len(classes)),
	}
	for i, cl := range classes {
		rep := minMember[cl]
		out.Accept[i] = accept[rep]
		out.Delta[i] = make([]int, nc)
		for c := 0; c < nc; c++ {
			to := class[delta[rep][c]]
			if to == deadClass {
				out.Delta[i][c] = -1
			} else {
				out.Delta[i][c] = id[to]
			}
		}
	}
	// Degenerate case: the start state itself is dead-equivalent (the
	// automaton accepts nothing). Keep a single rejecting state.
	if class[d.Start] == deadClass {
		return &DFA{
			NumStates: 1,
			Start:     0,
			Accept:    []bool{false},
			Cats:      append([]string(nil), d.Cats...),
			Delta:     [][]int{rejectRow(nc)},
		}
	}
	return out
}

func rejectRow(nc int) []int {
	row := make([]int, nc)
	for i := range row {
		row[i] = -1
	}
	return row
}
