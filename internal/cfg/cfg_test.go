package cfg

import (
	"testing"
	"testing/quick"
)

// anbn returns the CNF grammar for {aⁿbⁿ : n ≥ 1}:
// S → A X | A B ; X → S B ; A → a ; B → b.
func anbn(t *testing.T) *Grammar {
	t.Helper()
	g, err := NewGrammar([]string{"S", "X", "A", "B"}, "S")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][3]string{{"S", "A", "X"}, {"S", "A", "B"}, {"X", "S", "B"}} {
		if err := g.AddBin(r[0], r[1], r[2]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddTerm("A", "a"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddTerm("B", "b"); err != nil {
		t.Fatal(err)
	}
	return g
}

func inAnBn(words []string) bool {
	n := len(words)
	if n == 0 || n%2 != 0 {
		return false
	}
	for i, w := range words {
		want := "a"
		if i >= n/2 {
			want = "b"
		}
		if w != want {
			return false
		}
	}
	return true
}

func TestCKYAnBn(t *testing.T) {
	g := anbn(t)
	for _, tc := range []struct {
		words []string
		want  bool
	}{
		{[]string{"a", "b"}, true},
		{[]string{"a", "a", "b", "b"}, true},
		{[]string{"a", "a", "a", "b", "b", "b"}, true},
		{[]string{"a"}, false},
		{[]string{"b", "a"}, false},
		{[]string{"a", "b", "a", "b"}, false},
		{[]string{"a", "a", "b"}, false},
	} {
		res, err := CKY(g, tc.words)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted != tc.want {
			t.Errorf("CKY(%v) = %v, want %v", tc.words, res.Accepted, tc.want)
		}
	}
}

func TestCKYUnknownWord(t *testing.T) {
	g := anbn(t)
	if _, err := CKY(g, []string{"a", "z"}); err == nil {
		t.Error("expected unknown-terminal error")
	}
	if _, err := CKY(g, nil); err == nil {
		t.Error("expected empty-input error")
	}
}

func TestEarleyAnBn(t *testing.T) {
	g := anbn(t)
	for _, tc := range []struct {
		words []string
		want  bool
	}{
		{[]string{"a", "b"}, true},
		{[]string{"a", "a", "b", "b"}, true},
		{[]string{"a", "b", "b"}, false},
		{[]string{"b"}, false},
	} {
		got, err := Earley(g, tc.words)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("Earley(%v) = %v, want %v", tc.words, got, tc.want)
		}
	}
}

func TestMeshAnBn(t *testing.T) {
	g := anbn(t)
	for _, tc := range []struct {
		words []string
		want  bool
	}{
		{[]string{"a", "b"}, true},
		{[]string{"a", "a", "b", "b"}, true},
		{[]string{"a", "a", "a", "b", "b", "b"}, true},
		{[]string{"a", "b", "a"}, false},
	} {
		res, err := Mesh(g, tc.words)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted != tc.want {
			t.Errorf("Mesh(%v) = %v, want %v", tc.words, res.Accepted, tc.want)
		}
	}
}

// TestQuickThreeRecognizersAgree runs CKY, Earley, and the mesh
// automaton on random grammars and strings; all three must agree.
func TestQuickThreeRecognizersAgree(t *testing.T) {
	f := func(seed uint64) bool {
		g := Random(seed, 3+int(seed%4), 2+int(seed%3), 6+int(seed%8))
		for trial := uint64(0); trial < 4; trial++ {
			n := 1 + int((seed+trial)%7)
			words := RandomString(g, seed*31+trial, n)
			cky, err := CKY(g, words)
			if err != nil {
				t.Logf("cky: %v", err)
				return false
			}
			earley, err := Earley(g, words)
			if err != nil {
				t.Logf("earley: %v", err)
				return false
			}
			mesh, err := Mesh(g, words)
			if err != nil {
				t.Logf("mesh: %v", err)
				return false
			}
			if cky.Accepted != earley || cky.Accepted != mesh.Accepted {
				t.Logf("disagreement on %v: cky=%v earley=%v mesh=%v\n%s",
					words, cky.Accepted, earley, mesh.Accepted, g)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMeshLinearTicks verifies the O(n) tick bound of the cellular
// automaton: ticks grow linearly, not quadratically.
func TestMeshLinearTicks(t *testing.T) {
	g := anbn(t)
	ticksAt := func(n int) uint64 {
		words := make([]string, 2*n)
		for i := range words {
			if i < n {
				words[i] = "a"
			} else {
				words[i] = "b"
			}
		}
		res, err := Mesh(g, words)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("a^%db^%d should be accepted", n, n)
		}
		return res.Ticks
	}
	t4, t8 := ticksAt(4), ticksAt(8) // inputs of length 8 and 16
	ratio := float64(t8) / float64(t4)
	if ratio > 3.0 {
		t.Errorf("tick growth %0.2fx for doubled input — not linear (t4=%d t8=%d)", ratio, t4, t8)
	}
	if t8 <= t4 {
		t.Errorf("ticks should grow with n (t4=%d t8=%d)", t4, t8)
	}
}

func TestMeshCellCount(t *testing.T) {
	g := anbn(t)
	res, err := Mesh(g, []string{"a", "a", "b", "b"})
	if err != nil {
		t.Fatal(err)
	}
	// n=4: cells for all 0≤i<j≤4: C(5,2) = 10.
	if res.Cells != 10 {
		t.Errorf("cells = %d, want 10", res.Cells)
	}
}

func TestCKYOpsGrowth(t *testing.T) {
	g := anbn(t)
	ops := func(n int) uint64 {
		words := make([]string, 2*n)
		for i := range words {
			if i < n {
				words[i] = "a"
			} else {
				words[i] = "b"
			}
		}
		res, err := CKY(g, words)
		if err != nil {
			t.Fatal(err)
		}
		return res.Ops
	}
	o4, o8 := ops(4), ops(8)
	// Doubling n multiplies O(n³) work by ~8.
	ratio := float64(o8) / float64(o4)
	if ratio < 4 || ratio > 12 {
		t.Errorf("CKY op growth %.1fx for doubled input, want ~8x", ratio)
	}
}

func TestGrammarValidation(t *testing.T) {
	if _, err := NewGrammar(nil, "S"); err == nil {
		t.Error("empty nonterminals should fail")
	}
	if _, err := NewGrammar([]string{"S", "S"}, "S"); err == nil {
		t.Error("duplicate nonterminals should fail")
	}
	if _, err := NewGrammar([]string{"S"}, "T"); err == nil {
		t.Error("unknown start should fail")
	}
	g, _ := NewGrammar([]string{"S"}, "S")
	if err := g.AddBin("S", "S", "T"); err == nil {
		t.Error("unknown nonterminal in rule should fail")
	}
	if err := g.AddTerm("T", "t"); err == nil {
		t.Error("unknown lhs should fail")
	}
}

func TestRandomGrammarDeterministic(t *testing.T) {
	a := Random(42, 4, 3, 8)
	b := Random(42, 4, 3, 8)
	if a.String() != b.String() {
		t.Error("Random not deterministic for equal seeds")
	}
	w1 := RandomString(a, 7, 5)
	w2 := RandomString(b, 7, 5)
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Error("RandomString not deterministic")
		}
	}
}
