// Command parsecrouter shards parse traffic across a fleet of parsecd
// backends: POST /v1/parse and /v1/batch are rendezvous-hashed on the
// canonical result-cache key so repeated sentences keep landing on the
// same node (its result cache stays hot), failed shards are ejected by
// health probes and retried on the next-ranked candidate, GET /metrics
// re-emits the fleet's parsecd_* counters summed plus the router's own
// parsecrouter_* series, and /v1/grammars merges the fleet inventory.
//
// Usage:
//
//	parsecd -addr 127.0.0.1:9001 -shard-name shard0 &
//	parsecd -addr 127.0.0.1:9002 -shard-name shard1 &
//	parsecrouter -addr 127.0.0.1:8724 -shards http://127.0.0.1:9001,http://127.0.0.1:9002
//	curl -s localhost:8724/v1/parse -d '{"grammar":"demo","text":"the program runs"}'
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
)

func main() {
	if err := run(os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "parsecrouter:", err)
		os.Exit(1)
	}
}

// run starts the router and blocks until a termination signal arrives.
// ready, when non-nil, receives the bound address once the listener is
// up (used by tests; nil in production).
func run(args []string, logw io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("parsecrouter", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", "127.0.0.1:8724", "listen address (use :0 for an ephemeral port)")
		shards        = fs.String("shards", "", "comma-separated parsecd base URLs (required)")
		probeInterval = fs.Duration("probe-interval", time.Second, "health-probe period (negative disables probing)")
		probeTimeout  = fs.Duration("probe-timeout", time.Second, "per-probe deadline")
		ejectAfter    = fs.Int("eject-after", 3, "consecutive probe failures that eject a shard")
		readmitAfter  = fs.Int("readmit-after", 2, "consecutive probe successes that re-admit an ejected shard")
		retries       = fs.Int("retries", 2, "failover attempts after the first shard (so a request touches at most 1+retries shards)")
		replicateTop  = fs.Int("replicate-top", 0, "replicate up to this many hot keys across their HRW prefix (0 disables)")
		replicaFactor = fs.Int("replica-factor", 2, "replica prefix length R for promoted hot keys")
		hotShare      = fs.Float64("hot-share", 0.05, "request share of the window that promotes a key")
		hotWindow     = fs.Int("hot-window", 2048, "hot-key tracker sliding-window size, in requests")
		hedge         = fs.Bool("hedge", false, "hedge replicated-key requests to the next replica at half the p99 budget")
		hedgeDelay    = fs.Duration("hedge-delay", 25*time.Millisecond, "earliest hedge: cold-start delay and floor under the adaptive p99/2 budget (negative hedges immediately)")
		maxInflight   = fs.Int("max-inflight", 0, "per-shard in-flight forward cap; beyond it requests shed with 429, bulk first (0 disables)")
		drain         = fs.Duration("drain", 30*time.Second, "max time to drain in-flight requests on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var fleet []string
	for _, u := range strings.Split(*shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			fleet = append(fleet, strings.TrimRight(u, "/"))
		}
	}
	if len(fleet) == 0 {
		return fmt.Errorf("no shards: pass -shards http://host:port,http://host:port,...")
	}
	logger := log.New(logw, "parsecrouter ", log.LstdFlags|log.Lmsgprefix)

	r, err := router.New(router.Config{
		Addr:          *addr,
		Shards:        fleet,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		EjectAfter:    *ejectAfter,
		ReadmitAfter:  *readmitAfter,
		Retries:       *retries,
		ReplicateTop:  *replicateTop,
		ReplicaFactor: *replicaFactor,
		HotKeyShare:   *hotShare,
		HotKeyWindow:  *hotWindow,
		Hedge:         *hedge,
		HedgeDelay:    *hedgeDelay,
		MaxInflight:   *maxInflight,
	})
	if err != nil {
		return err
	}
	bound, err := r.Start()
	if err != nil {
		return err
	}
	logger.Printf("routing on http://%s across %d shards (probe=%v eject-after=%d readmit-after=%d retries=%d replicate-top=%d replica-factor=%d hedge=%v max-inflight=%d)",
		bound, len(fleet), *probeInterval, *ejectAfter, *readmitAfter, *retries, *replicateTop, *replicaFactor, *hedge, *maxInflight)
	if ready != nil {
		ready <- bound
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	<-ctx.Done()
	stop()

	logger.Printf("shutdown signal received; draining (up to %v)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := r.Shutdown(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	st := r.Stats()
	var total uint64
	urls := make([]string, 0, len(st.Requests))
	for u, n := range st.Requests {
		total += n
		urls = append(urls, u)
	}
	sort.Strings(urls)
	for _, u := range urls {
		logger.Printf("shard %s: requests=%d errors=%d ejections=%d", u, st.Requests[u], st.Errors[u], st.Ejections[u])
	}
	logger.Printf("drained: requests=%d failovers=%d empty-fleet=%d probes=%d (failed=%d) hotkeys=%d/%d hedges=%d (wins=%d) sheds=%d+%d",
		total, st.Failovers, st.EmptyFleet, st.Probes, st.ProbeFailures,
		st.HotKeyPromotions, st.HotKeyDemotions, st.Hedges, st.HedgeWins,
		st.ShedsInteractive, st.ShedsBulk)
	return nil
}
