package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/server"
)

// TestRouterDaemonServesAndDrainsOnSIGTERM boots two real in-process
// parsecd backends and the router daemon on an ephemeral port, routes
// traffic through it, then delivers an actual SIGTERM and checks the
// drain log accounts for the shards.
func TestRouterDaemonServesAndDrainsOnSIGTERM(t *testing.T) {
	var backends []string
	for i := 0; i < 2; i++ {
		s := server.New(server.Config{ShardName: "shard" + string(rune('0'+i))})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		backends = append(backends, ts.URL)
	}

	var logbuf bytes.Buffer
	ready := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{
			"-addr", "127.0.0.1:0",
			"-shards", strings.Join(backends, ","),
			"-probe-interval", "50ms",
		}, &logbuf, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case <-time.After(5 * time.Second):
		t.Fatal("router never came up")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	body, _ := json.Marshal(map[string]any{"text": "the program runs", "backend": "serial"})
	resp, err = http.Post(base+"/v1/parse", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("parse via router: %d: %s", resp.StatusCode, data)
	}
	if shard := resp.Header.Get(server.ShardHeader); !strings.HasPrefix(shard, "shard") {
		t.Errorf("response not attributed to a shard: %q", shard)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("router did not drain and exit after SIGTERM")
	}
	logs := logbuf.String()
	for _, want := range []string{"routing on", "draining", "drained: requests=1"} {
		if !strings.Contains(logs, want) {
			t.Errorf("log missing %q:\n%s", want, logs)
		}
	}
}

// TestRouterRequiresShards checks the flag validation path.
func TestRouterRequiresShards(t *testing.T) {
	if err := run([]string{"-addr", "127.0.0.1:0"}, io.Discard, nil); err == nil {
		t.Fatal("run without -shards should fail")
	}
}
