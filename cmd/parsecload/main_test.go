package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/benchjson"
	"repro/internal/server"
)

// TestSmokeLoadAgainstInProcessServer exercises the whole load path in
// tier-1: an in-process parsecd handler, the -smoke request mix, and
// the /metrics scrape at the end of the run.
func TestSmokeLoadAgainstInProcessServer(t *testing.T) {
	s := server.New(server.Config{Workers: 4, BatchWindow: 5 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// -no-cache so every request really parses: the assertion below
	// counts pool executions, which the result cache would elide for
	// duplicate sentences in the mix.
	var out bytes.Buffer
	if err := run([]string{"-url", ts.URL, "-smoke", "-backend", "serial", "-hist", "-no-cache"}, &out); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{
		"seed=1", // the default seed is echoed so the run can be replayed
		"requests=32",
		"status 200: 32",
		"latency p50=",
		"throughput=",
		"server batching: batches=",
		// -hist appends the client-side latency histogram with the same
		// bucket layout the server exports.
		"# TYPE parsecload_request_latency_seconds histogram",
		"parsecload_request_latency_seconds_count 32",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if st := s.Stats(); st.Parses != 32 {
		t.Errorf("server executed %d parses, want 32", st.Parses)
	}
}

// TestHistReportsShardAttribution: when the serving side names itself
// via X-Parsec-Shard (a sharded router, or a parsecd with -shard-name),
// the report attributes every request to its shard and -hist exposes
// the counts as a Prometheus counter family.
func TestHistReportsShardAttribution(t *testing.T) {
	s := server.New(server.Config{Workers: 2, ShardName: "s0"})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var out bytes.Buffer
	if err := run([]string{"-url", ts.URL, "-backend", "serial", "-n", "12", "-c", "3", "-hist"}, &out); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{
		"  shard s0: 12",
		"# TYPE parsecload_shard_requests_total counter",
		`parsecload_shard_requests_total{shard="s0"} 12`,
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

// TestJSONSummaryRoundTrip: -json must put exactly one decodable
// benchjson.LoadSummary object on stdout — no human-format lines — and
// the decoded summary must re-encode to the same bytes (the decode
// round trip cmd/parsecbench depends on).
func TestJSONSummaryRoundTrip(t *testing.T) {
	s := server.New(server.Config{Workers: 4, BatchWindow: time.Millisecond, ShardName: "s0"})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var out bytes.Buffer
	err := run([]string{"-url", ts.URL, "-backend", "serial",
		"-n", "24", "-c", "4", "-zipf", "1.4", "-zipf-pool", "6", "-json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	raw := out.Bytes()
	if !bytes.HasPrefix(bytes.TrimSpace(raw), []byte("{")) {
		t.Fatalf("stdout is not one JSON object:\n%s", raw)
	}
	var sum benchjson.LoadSummary
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sum); err != nil {
		t.Fatalf("decode summary: %v\n%s", err, raw)
	}
	if dec.More() {
		t.Fatalf("trailing output after the summary object:\n%s", raw)
	}
	if sum.Mode != "parse" || sum.Seed != 1 || sum.Requests != 24 {
		t.Errorf("summary header mismatch: %+v", sum)
	}
	if sum.ByStatus["200"] != 24 || sum.ByShard["s0"] != 24 {
		t.Errorf("attribution mismatch: by_status=%v by_shard=%v", sum.ByStatus, sum.ByShard)
	}
	if sum.Latency.P50 <= 0 || sum.Latency.P99 < sum.Latency.P50 || sum.Latency.Max < sum.Latency.P99 {
		t.Errorf("quantiles not ordered: %+v", sum.Latency)
	}
	if sum.ThroughputRPS <= 0 || sum.ElapsedNs <= 0 {
		t.Errorf("throughput accounting missing: %+v", sum)
	}
	if sum.Server == nil || sum.Server.CacheHits == 0 {
		t.Errorf("server-side scrape missing (zipf reuse must hit the result cache): %+v", sum.Server)
	}
	// Re-encode and decode again: the summary is a stable value type.
	reenc, err := json.Marshal(&sum)
	if err != nil {
		t.Fatal(err)
	}
	var sum2 benchjson.LoadSummary
	if err := json.Unmarshal(reenc, &sum2); err != nil {
		t.Fatal(err)
	}
	if sum2.Requests != sum.Requests || sum2.Latency != sum.Latency ||
		*sum2.Server != *sum.Server || sum2.ByShard["s0"] != sum.ByShard["s0"] {
		t.Errorf("round trip drifted:\n  first  %+v\n  second %+v", sum, sum2)
	}
}

// TestJSONRampSummary: ramp mode with -json records every step and the
// best sustained concurrency in the ramp section.
func TestJSONRampSummary(t *testing.T) {
	s := server.New(server.Config{Workers: 4, BatchWindow: time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var out bytes.Buffer
	err := run([]string{"-url", ts.URL, "-backend", "serial",
		"-n", "8", "-c", "2", "-ramp", "-ramp-steps", "2", "-ramp-target", "30s", "-json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var sum benchjson.LoadSummary
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatalf("decode: %v\n%s", err, out.String())
	}
	if sum.Ramp == nil || len(sum.Ramp.Steps) != 2 || sum.Ramp.BestConc != 4 {
		t.Fatalf("ramp record mismatch: %+v", sum.Ramp)
	}
	for i, step := range sum.Ramp.Steps {
		if !step.WithinBudget || step.Concurrency != 2<<i {
			t.Errorf("step %d mismatch: %+v", i, step)
		}
	}
}

// TestLoadReportsNon200s pins the error-accounting path: a grammar mix
// the server doesn't know must show up as 404s, not silent drops.
func TestLoadReportsNon200s(t *testing.T) {
	s := server.New(server.Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var out bytes.Buffer
	if err := run([]string{"-url", ts.URL, "-n", "8", "-c", "2", "-grammars", "nope"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "status 404: 8") {
		t.Errorf("expected 8 404s:\n%s", out.String())
	}
}

// TestZipfModeHitsResultCache: skewed reuse over a small sentence pool
// must produce a majority of result-cache hits, and the report must
// surface the scraped hit rate.
func TestZipfModeHitsResultCache(t *testing.T) {
	s := server.New(server.Config{Workers: 4, BatchWindow: time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var out bytes.Buffer
	err := run([]string{"-url", ts.URL, "-backend", "serial",
		"-n", "120", "-c", "8", "-zipf", "1.4", "-zipf-pool", "8"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{
		"request mix: zipf s=1.4 over 8 distinct sentences",
		"status 200: 120",
		"server result cache: hits=",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	st := s.Stats()
	lookups := st.ResultCacheHits + st.ResultCacheMisses + st.ResultCacheCoalesced
	if lookups == 0 {
		t.Fatal("no result-cache lookups recorded")
	}
	reused := st.ResultCacheHits + st.ResultCacheCoalesced
	if rate := float64(reused) / float64(lookups); rate <= 0.5 {
		t.Errorf("cache reuse rate %.2f (hits=%d coalesced=%d misses=%d), want > 0.5 under zipf skew",
			rate, st.ResultCacheHits, st.ResultCacheCoalesced, st.ResultCacheMisses)
	}
	// At most one parse per distinct pool sentence (plus leader-failure
	// retries, which a healthy server doesn't produce).
	if st.Parses > 8 {
		t.Errorf("server executed %d parses for an 8-sentence pool", st.Parses)
	}
}

// TestZipfValidation: a skew ≤ 1 is rejected (rand.NewZipf's domain).
func TestZipfValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-zipf", "0.9"}, &out); err == nil {
		t.Error("zipf 0.9 accepted; want error")
	}
	if err := run([]string{"-zipf", "1.2", "-zipf-pool", "0"}, &out); err == nil {
		t.Error("zipf-pool 0 accepted; want error")
	}
}

// TestRampModeStepsAndReports drives the closed-loop mode against an
// in-process server with a generous latency budget: every step should
// pass until the step cap, and the report must carry the per-step lines
// and the final verdict.
func TestRampModeStepsAndReports(t *testing.T) {
	s := server.New(server.Config{Workers: 4, BatchWindow: time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var out bytes.Buffer
	err := run([]string{"-url", ts.URL, "-backend", "serial",
		"-n", "16", "-c", "2", "-ramp", "-ramp-steps", "3", "-ramp-target", "30s"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{
		"ramp: target p50=30s, 16 requests/step, up to 3 steps",
		"step 1: c=2",
		"step 2: c=4",
		"step 3: c=8",
		"[ok]",
		"ramp result: max sustainable c=8",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if st := s.Stats(); st.Parses == 0 {
		t.Error("ramp sent no traffic")
	}
}

// TestRampModeOverBudget: an impossible latency budget fails on step 1
// and reports that no step was sustainable.
func TestRampModeOverBudget(t *testing.T) {
	s := server.New(server.Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var out bytes.Buffer
	err := run([]string{"-url", ts.URL, "-backend", "serial",
		"-n", "8", "-c", "2", "-ramp", "-ramp-steps", "4", "-ramp-target", "1ns"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	if !strings.Contains(report, "[over budget]") ||
		!strings.Contains(report, "ramp result: no step met the p50 budget") {
		t.Errorf("over-budget run not reported:\n%s", report)
	}
	if strings.Contains(report, "step 2:") {
		t.Errorf("ramp continued past a failed step:\n%s", report)
	}
}

// TestLatticeLoadSmoke drives the -lattice workload against an
// in-process server: every request must decode cleanly and the server's
// prefix-snapshot cache must show hits (utterances repeat across the
// run), which the report surfaces from /metrics.
func TestLatticeLoadSmoke(t *testing.T) {
	s := server.New(server.Config{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var out bytes.Buffer
	err := run([]string{"-url", ts.URL, "-lattice", "-n", "24", "-c", "4",
		"-lattice-slots", "5", "-lattice-alts", "3", "-lattice-utterances", "6"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{
		"lattice mode (english, 5 slots x 3 alts, 6 utterances)",
		"status 200: 24",
		"server lattice: requests=24",
		"server prefix cache: hits=",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	st := s.Stats()
	if st.LatticeRequests != 24 {
		t.Errorf("server served %d lattice requests, want 24", st.LatticeRequests)
	}
	if st.LatticePrefixHits == 0 {
		t.Errorf("no prefix-cache hits across %d repeated utterances:\n%s", 24, report)
	}
}
