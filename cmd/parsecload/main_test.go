package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// TestSmokeLoadAgainstInProcessServer exercises the whole load path in
// tier-1: an in-process parsecd handler, the -smoke request mix, and
// the /metrics scrape at the end of the run.
func TestSmokeLoadAgainstInProcessServer(t *testing.T) {
	s := server.New(server.Config{Workers: 4, BatchWindow: 5 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var out bytes.Buffer
	if err := run([]string{"-url", ts.URL, "-smoke", "-backend", "serial", "-hist"}, &out); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{
		"seed=1", // the default seed is echoed so the run can be replayed
		"requests=32",
		"status 200: 32",
		"latency p50=",
		"throughput=",
		"server batching: batches=",
		// -hist appends the client-side latency histogram with the same
		// bucket layout the server exports.
		"# TYPE parsecload_request_latency_seconds histogram",
		"parsecload_request_latency_seconds_count 32",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if st := s.Stats(); st.Parses != 32 {
		t.Errorf("server executed %d parses, want 32", st.Parses)
	}
}

// TestLoadReportsNon200s pins the error-accounting path: a grammar mix
// the server doesn't know must show up as 404s, not silent drops.
func TestLoadReportsNon200s(t *testing.T) {
	s := server.New(server.Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var out bytes.Buffer
	if err := run([]string{"-url", ts.URL, "-n", "8", "-c", "2", "-grammars", "nope"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "status 404: 8") {
		t.Errorf("expected 8 404s:\n%s", out.String())
	}
}
