package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCorpusCLIBuiltin(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-grammar", "english"}, &buf); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "passed") {
		t.Errorf("output: %s", buf.String())
	}
}

func TestCorpusCLICustomFileAndVerbose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.txt")
	if err := os.WriteFile(path, []byte("+ the program runs\n- program the\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-grammar", "demo", "-file", path, "-v"}, &buf); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "2/2 passed") || !strings.Contains(out, "PASS") {
		t.Errorf("output: %s", out)
	}
}

func TestCorpusCLIFailuresExitNonNil(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.txt")
	if err := os.WriteFile(path, []byte("- the program runs\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-grammar", "demo", "-file", path}, &buf); err == nil {
		t.Error("mislabeled corpus should return an error")
	}
}

func TestCorpusCLIErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-grammar", "zzz"}, &buf); err == nil {
		t.Error("unknown grammar")
	}
	if err := run([]string{"-backend", "zzz"}, &buf); err == nil {
		t.Error("unknown backend")
	}
	if err := run([]string{"-file", "/nonexistent"}, &buf); err == nil {
		t.Error("missing file")
	}
}
