// Command corpus evaluates a CDG grammar against a labeled regression
// corpus (one '+'/'-'-prefixed sentence per line; see internal/corpus).
//
// Usage:
//
//	corpus -grammar english                 # built-in English regression
//	corpus -grammar english -file my.txt    # custom corpus
//	corpus -grammar-file g.cdg -file my.txt -backend maspar
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cdg"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/grammars"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "corpus:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("corpus", flag.ContinueOnError)
	var (
		grammarName = fs.String("grammar", "english", "built-in grammar: demo|english|ww|dyck|anbn|crossserial|chain")
		grammarFile = fs.String("grammar-file", "", "load a grammar from an s-expression file instead")
		file        = fs.String("file", "", "corpus file (default: the built-in English regression)")
		backend     = fs.String("backend", "serial", "machine model: serial|pram|maspar|mesh")
		verbose     = fs.Bool("v", false, "print every verdict, not just failures")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *cdg.Grammar
	var err error
	if *grammarFile != "" {
		src, err2 := os.ReadFile(*grammarFile)
		if err2 != nil {
			return err2
		}
		g, err = cdg.ParseGrammar(string(src))
	} else {
		switch *grammarName {
		case "demo":
			g = grammars.PaperDemo()
		case "english":
			g = grammars.English()
		case "ww":
			g = grammars.CopyLanguage()
		case "dyck":
			g = grammars.Dyck()
		case "anbn":
			g = grammars.AnBn()
		case "crossserial":
			g = grammars.CrossSerial()
		case "chain":
			g = grammars.Chain()
		default:
			return fmt.Errorf("unknown grammar %q", *grammarName)
		}
	}
	if err != nil {
		return err
	}

	src := corpus.EnglishRegression
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		src = string(data)
	}
	c, err := corpus.Parse(src)
	if err != nil {
		return err
	}

	var b core.Backend
	switch *backend {
	case "serial":
		b = core.Serial
	case "pram":
		b = core.PRAM
	case "maspar":
		b = core.MasPar
	case "mesh":
		b = core.Mesh
	default:
		return fmt.Errorf("unknown backend %q", *backend)
	}

	p := core.NewParser(g, core.WithBackend(b))
	rep := corpus.Run(g, p, c)
	if *verbose {
		for _, v := range rep.Verdicts {
			mark := "PASS"
			if !v.Pass() {
				mark = "FAIL"
			}
			fmt.Fprintf(out, "%s line %-4d %v\n", mark, v.Entry.Line, v.Entry.Words)
		}
	}
	fmt.Fprint(out, rep.String())
	if rep.Failed > 0 {
		return fmt.Errorf("%d corpus failure(s)", rep.Failed)
	}
	return nil
}
