package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfleet"
	"repro/internal/benchjson"
)

// TestRunInprocWritesValidReport drives the CLI end to end in the
// in-process mode: run the checked-in smoke scenario (2 shards, a kill
// phase, a revive), then query the artifact it wrote.
func TestRunInprocWritesValidReport(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_cluster.json")
	var buf bytes.Buffer
	err := run([]string{"run", "-scenario", "../../scenarios/smoke.json", "-mode", "inproc", "-o", out}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	rep, st, err := benchfleet.LoadReport(data)
	if err != nil {
		t.Fatalf("artifact does not validate: %v", err)
	}
	if err := benchjson.Validate(rep); err != nil {
		t.Fatal(err)
	}
	if st == nil {
		t.Fatal("artifact has no samples payload")
	}
	// The kill-phase per-shard series is non-empty for the survivor.
	if v, ok := st.Quantile(benchfleet.Query{Phase: "kill", Shard: "shard0"}, 0.99); !ok || v <= 0 {
		t.Fatalf("survivor kill-phase p99 = %d,%v want > 0", v, ok)
	}

	// Query subcommand reads the artifact back.
	buf.Reset()
	if err := run([]string{"query", "-in", out, "-phase", "kill", "-p", "0.99"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "shard shard0:") {
		t.Fatalf("query output missing per-shard lines:\n%s", buf.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	var buf bytes.Buffer
	for _, args := range [][]string{
		{},
		{"frobnicate"},
		{"run"},
		{"run", "-scenario", "no-such-file.json"},
		{"query", "-in", "no-such-file.json"},
		{"query", "-in", "x", "-p", "1.5"},
	} {
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

// TestProcFleetSmoke is the real-process smoke: a 2-shard fleet plus
// router as actual child processes, a kill -9 mid-scenario, and a
// schema-valid BENCH_cluster.json at the end. Gated behind
// PARSECBENCH_PROC=1 because it needs prebuilt binaries
// (PARSECBENCH_BIN, default .benchbin at the repo root) — `make
// bench-cluster-smoke` builds them and runs this.
func TestProcFleetSmoke(t *testing.T) {
	if os.Getenv("PARSECBENCH_PROC") != "1" {
		t.Skip("real-process smoke runs only under make bench-cluster-smoke (PARSECBENCH_PROC=1)")
	}
	bin := os.Getenv("PARSECBENCH_BIN")
	if bin == "" {
		bin = "../../.benchbin"
	}
	abs, err := filepath.Abs(bin)
	if err != nil {
		t.Fatal(err)
	}
	out := os.Getenv("PARSECBENCH_OUT")
	if out == "" {
		out = filepath.Join(t.TempDir(), "BENCH_cluster.json")
	}

	var buf bytes.Buffer
	err = run([]string{
		"run",
		"-scenario", "../../scenarios/smoke.json",
		"-mode", "proc",
		"-bin", abs,
		"-logdir", t.TempDir(),
		"-scrape-every", "100ms",
		"-o", out,
	}, &buf)
	if err != nil {
		t.Fatalf("proc run: %v\n%s", err, buf.String())
	}
	t.Logf("proc run output:\n%s", buf.String())

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	rep, st, err := benchfleet.LoadReport(data)
	if err != nil {
		t.Fatalf("artifact does not validate: %v", err)
	}
	if st == nil {
		t.Fatal("artifact has no samples payload")
	}
	names := map[string]benchjson.Result{}
	for _, r := range rep.Results {
		names[r.Name] = r
	}
	if row, ok := names["Fleet/smoke/total"]; !ok || row.Iterations != 140 {
		t.Fatalf("total row = %+v,%v want 140 iterations", row, ok)
	}
	// Non-empty per-shard p99 series: the surviving shard exposes a
	// latency histogram with observations in the kill phase...
	warm := benchfleet.Query{Phase: "warm"}
	kill := benchfleet.Query{Phase: "kill"}
	if v, ok := st.HistQuantile("parsecd_parse_latency_seconds", "shard0", kill, 0.99); !ok || v <= 0 {
		t.Fatalf("shard0 kill-phase scraped p99 = %g,%v want > 0", v, ok)
	}
	// ...and the zipf warm phase produced result-cache hits.
	if hr, ok := st.HitRate("shard0", warm); !ok || hr <= 0 {
		t.Fatalf("shard0 warm hit rate = %g,%v want > 0", hr, ok)
	}
	// The kill was real: shard1 contributed no samples to the kill
	// phase's closing scrape, and the router ejected it.
	if d, ok := st.Delta("parsecrouter_shard_ejections_total", benchfleet.RouterSource, kill); !ok || d < 1 {
		t.Fatalf("ejections during kill = %g,%v want >= 1", d, ok)
	}
}
