// Command parsecbench runs fleet benchmark scenarios and queries their
// artifacts. `parsecbench run` boots an N-shard parsecd fleet behind a
// parsecrouter — in-process (deterministic, no child processes) or as
// real local processes (-mode proc, the kill -9 mode `make
// bench-cluster` uses) — drives the scenario's phased load mix with its
// fault schedule, and writes BENCH_cluster.json in the shared benchjson
// schema with the columnar sample store embedded. `parsecbench query`
// answers post-hoc questions against a written artifact ("p99 by shard
// during the kill phase") without re-running anything.
//
// Usage:
//
//	parsecbench run -scenario scenarios/smoke.json -o BENCH_cluster.json
//	parsecbench run -scenario scenarios/zipf-kill.json -mode proc -bin .benchbin
//	parsecbench query -in BENCH_cluster.json -phase kill -p 0.99
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/benchfleet"
	"repro/internal/router"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "parsecbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: parsecbench <run|query> [flags]")
	}
	switch args[0] {
	case "run":
		return runScenario(args[1:], out)
	case "query":
		return runQuery(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want run or query)", args[0])
	}
}

func runScenario(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("parsecbench run", flag.ContinueOnError)
	var (
		scenPath = fs.String("scenario", "", "scenario JSON file (required)")
		mode     = fs.String("mode", "inproc", "fleet mode: inproc (httptest harness, deterministic) or proc (real local processes)")
		binDir   = fs.String("bin", ".benchbin", "directory with parsecd/parsecrouter/parsecload binaries (-mode proc)")
		logDir   = fs.String("logdir", "", "directory for per-process logs (-mode proc; empty discards)")
		outPath  = fs.String("o", "BENCH_cluster.json", "output report path (- for stdout)")
		every    = fs.Duration("scrape-every", 250*time.Millisecond, "mid-phase /metrics scrape cadence (-mode proc; inproc scrapes only at phase boundaries)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scenPath == "" {
		return fmt.Errorf("-scenario is required")
	}
	data, err := os.ReadFile(*scenPath)
	if err != nil {
		return err
	}
	sc, err := benchfleet.DecodeScenario(data)
	if err != nil {
		return err
	}

	var (
		fleet benchfleet.Fleet
		opts  benchfleet.Options
	)
	switch *mode {
	case "inproc":
		f, err := benchfleet.NewHarnessFleet(sc, server.Config{}, router.Config{})
		if err != nil {
			return err
		}
		fleet = f
	case "proc":
		f, err := benchfleet.NewProcFleet(sc, benchfleet.ProcConfig{BinDir: *binDir, LogDir: *logDir})
		if err != nil {
			return err
		}
		fleet = f
		opts.Load = benchfleet.ParsecloadLoad(*binDir, sc)
		opts.ScrapeEvery = *every
	default:
		return fmt.Errorf("unknown -mode %q (want inproc or proc)", *mode)
	}
	defer fleet.Close() //nolint:errcheck

	started := time.Now()
	res, err := benchfleet.Run(context.Background(), fleet, sc, opts)
	if err != nil {
		return err
	}
	res.StartedAt = started
	rep, err := benchfleet.BuildReport(res)
	if err != nil {
		return err
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *outPath == "-" {
		_, err = out.Write(enc)
		return err
	}
	if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
		return err
	}
	for _, pr := range res.Phases {
		fmt.Fprintf(out, "phase %-12s requests=%d lost=%d errors=%d p50=%.3fms p99=%.3fms %.0f req/s\n",
			pr.Name, pr.Requests, pr.Lost, pr.Errors,
			float64(pr.P50Ns)/1e6, float64(pr.P99Ns)/1e6, pr.ThroughputRPS)
	}
	fmt.Fprintf(out, "wrote %s (%d results, %s elapsed)\n", *outPath, len(rep.Results), time.Since(started).Round(time.Millisecond))
	return nil
}

func runQuery(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("parsecbench query", flag.ContinueOnError)
	var (
		inPath = fs.String("in", "BENCH_cluster.json", "report artifact to query")
		phase  = fs.String("phase", "", "restrict to one scenario phase (empty: whole run)")
		shard  = fs.String("shard", "", "restrict to one shard (empty: all)")
		p      = fs.Float64("p", 0.99, "latency quantile to report (0 < p <= 1)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *p <= 0 || *p > 1 {
		return fmt.Errorf("-p must be in (0, 1]")
	}
	data, err := os.ReadFile(*inPath)
	if err != nil {
		return err
	}
	_, st, err := benchfleet.LoadReport(data)
	if err != nil {
		return err
	}
	if st == nil {
		return fmt.Errorf("%s carries no samples payload; re-run the scenario with parsecbench run", *inPath)
	}
	_, err = io.WriteString(out, st.DescribeQuery(benchfleet.Query{Phase: *phase, Shard: *shard}, *p))
	return err
}
