// Command parsecd serves CDG parsing over HTTP/JSON: POST /v1/parse and
// /v1/batch run sentences through the PARSEC backends with a
// compiled-grammar cache and a micro-batching coalescer that groups
// same-grammar requests into one simulator run; GET /metrics exposes
// Prometheus text metrics (machine-work counters, queue wait, parse
// latency, batch size), /healthz liveness, and /v1/grammars the grammar
// inventory. SIGTERM/SIGINT drain gracefully: accepted requests finish,
// then the process exits.
//
// Usage:
//
//	parsecd -addr 127.0.0.1:8723
//	curl -s localhost:8723/v1/parse -d '{"grammar":"demo","text":"the program runs"}'
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "parsecd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until stop fires or a termination
// signal arrives. ready, when non-nil, receives the bound address once
// the listener is up (used by tests; nil in production).
func run(args []string, logw io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("parsecd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8723", "listen address (use :0 for an ephemeral port)")
		workers     = fs.Int("workers", 2, "workers per backend queue")
		queueDepth  = fs.Int("queue", 256, "max queued requests per backend before 429s")
		batchWindow = fs.Duration("batch-window", 2*time.Millisecond, "micro-batching window (0 disables coalescing)")
		maxBatch    = fs.Int("max-batch", 16, "max requests coalesced into one run")
		timeout     = fs.Duration("timeout", 30*time.Second, "default per-request deadline")
		drain       = fs.Duration("drain", 30*time.Second, "max time to drain in-flight requests on shutdown")
		cacheSize   = fs.Int("cache-entries", 4096, "result cache capacity in entries (-1 disables the result cache)")
		cacheTTL    = fs.Duration("cache-ttl", time.Minute, "result cache entry time-to-live")
		shardName   = fs.String("shard-name", "", "name echoed as the X-Parsec-Shard response header (for fleets behind parsecrouter)")
		latticeMax  = fs.Int("lattice-max-paths", 0, "max candidate paths expanded per lattice decode (0: server default)")
		latticePfx  = fs.Int("lattice-prefix-entries", 0, "prefix-snapshot cache capacity in entries (0: server default, -1 disables prefix reuse)")
		debugFaults = fs.Bool("debug-faults", false, "mount POST /debug/fault for injected request stalls (benchmark fleets only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := log.New(logw, "parsecd ", log.LstdFlags|log.Lmsgprefix)

	s := server.New(server.Config{
		Addr:           *addr,
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		BatchWindow:    *batchWindow,
		MaxBatch:       *maxBatch,
		DefaultTimeout: *timeout,

		ResultCacheEntries: *cacheSize,
		ResultCacheTTL:     *cacheTTL,
		ShardName:          *shardName,

		LatticeMaxPaths:      *latticeMax,
		LatticePrefixEntries: *latticePfx,
		DebugFaults:          *debugFaults,
	})
	bound, err := s.Start()
	if err != nil {
		return err
	}
	logger.Printf("listening on http://%s (workers=%d/backend queue=%d batch-window=%v max-batch=%d)",
		bound, *workers, *queueDepth, *batchWindow, *maxBatch)
	if ready != nil {
		ready <- bound
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	<-ctx.Done()
	stop()

	logger.Printf("shutdown signal received; draining (up to %v)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := s.Shutdown(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	st := s.Stats()
	logger.Printf("drained: parses=%d batches=%d mean-batch=%.2f timeouts=%d rejected=%d",
		st.Parses, st.Batches, st.MeanBatchSize, st.Timeouts, st.Rejected)
	return nil
}
