package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestDaemonServesAndDrainsOnSIGTERM boots the real daemon on an
// ephemeral port, serves traffic, then delivers an actual SIGTERM and
// checks that in-flight requests are answered before run returns.
func TestDaemonServesAndDrainsOnSIGTERM(t *testing.T) {
	var logbuf bytes.Buffer
	ready := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		// -cache-entries -1: the identical in-flight requests below must
		// each reach the pool; the result cache would singleflight them
		// into one parse and the drain accounting below counts all 4.
		runErr <- run([]string{"-addr", "127.0.0.1:0", "-batch-window", "150ms", "-max-batch", "64", "-cache-entries", "-1"}, &logbuf, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never came up")
	}

	// Liveness.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// Launch requests that will still be inside the 150ms batch window
	// when the signal lands.
	const n = 4
	statuses := make(chan int, n)
	var started sync.WaitGroup
	for i := 0; i < n; i++ {
		started.Add(1)
		go func() {
			body, _ := json.Marshal(map[string]any{"text": "the program runs", "backend": "serial"})
			started.Done()
			resp, err := http.Post(base+"/v1/parse", "application/json", bytes.NewReader(body))
			if err != nil {
				statuses <- -1
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
	}
	started.Wait()
	time.Sleep(75 * time.Millisecond) // let the POSTs connect and enqueue

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain and exit after SIGTERM")
	}
	for i := 0; i < n; i++ {
		if status := <-statuses; status != http.StatusOK {
			t.Errorf("in-flight request %d: status %d", i, status)
		}
	}
	logs := logbuf.String()
	for _, want := range []string{"listening on", "draining", "drained:"} {
		if !strings.Contains(logs, want) {
			t.Errorf("log missing %q:\n%s", want, logs)
		}
	}
	if !strings.Contains(logs, fmt.Sprintf("parses=%d", n)) {
		t.Errorf("drain log should account for all %d parses:\n%s", n, logs)
	}
}
