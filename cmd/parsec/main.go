// Command parsec parses sentences with a CDG grammar on a selectable
// backend (serial / pram / maspar / mesh / hostpar) and prints the
// final constraint network, the precedence graphs, and the machine
// statistics. Grammar-development flags: -lint (static checks),
// -trace (per-constraint elimination log), -diagnose N (find the
// constraint sets blocking a rejected sentence), -explain
// pos.role.LABEL-mod (the Figure 10 support computation), -show-pe-map
// (the Figure 11 allocation), -dot (Graphviz).
//
// Usage:
//
//	parsec [flags] word word word…
//	parsec -grammar english -backend maspar the dog saw the man
//	parsec -grammar-file my.cdg -show-network runs program the
//
// Built-in grammars: demo (the paper's §1 grammar), english, ww, dyck,
// anbn, crossserial, chain.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cdg"
	"repro/internal/cn"
	"repro/internal/core"
	"repro/internal/grammars"
	"repro/internal/maspar"
	"repro/internal/serial"
	"repro/internal/server"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "parsec:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("parsec", flag.ContinueOnError)
	var (
		grammarName = fs.String("grammar", "demo", "built-in grammar: demo|english|ww|dyck|anbn|chain")
		grammarFile = fs.String("grammar-file", "", "load a grammar from an s-expression file instead")
		backend     = fs.String("backend", "maspar", "machine model: serial|pram|maspar|mesh|hostpar")
		pes         = fs.Int("pes", maspar.PhysicalPEs, "physical PEs for the maspar backend")
		maxFilter   = fs.Int("max-filter", 0, "bound filtering rounds (0 = run to fixpoint)")
		noFilter    = fs.Bool("no-filter", false, "skip the filtering phase")
		showNet     = fs.Bool("show-network", false, "print the final constraint network")
		showPEMap   = fs.Bool("show-pe-map", false, "print the MasPar PE allocation (Figure 11)")
		showTrace   = fs.Bool("trace", false, "print a propagation trace (serial engine)")
		dot         = fs.Bool("dot", false, "emit Graphviz DOT for the parses (and the network if ambiguous)")
		explain     = fs.String("explain", "", "explain support of a role value, e.g. 2.governor.SUBJ-1 (Figure 10)")
		lint        = fs.Bool("lint", false, "run the grammar linter before parsing")
		diagnose    = fs.Int("diagnose", 0, "when rejected, search for blocker constraint sets up to this size")
		maxParses   = fs.Int("max-parses", 10, "max precedence graphs to print (0 = all)")
		stats       = fs.Bool("stats", true, "print machine statistics")
		jsonOut     = fs.Bool("json", false, "emit the parsecd service result schema instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	words := fs.Args()
	if len(words) == 0 {
		return fmt.Errorf("no sentence given; try: parsec the program runs")
	}

	g, err := loadGrammar(*grammarName, *grammarFile)
	if err != nil {
		return err
	}
	if *lint {
		if findings := cdg.Lint(g); len(findings) > 0 {
			for _, f := range findings {
				fmt.Fprintf(out, "lint: %s\n", f)
			}
		} else {
			fmt.Fprintln(out, "lint: grammar is clean")
		}
	}

	var b core.Backend
	switch *backend {
	case "serial":
		b = core.Serial
	case "pram":
		b = core.PRAM
	case "maspar":
		b = core.MasPar
	case "mesh":
		b = core.Mesh
	case "hostpar":
		b = core.HostParallel
	default:
		return fmt.Errorf("unknown backend %q (serial|pram|maspar|mesh|hostpar)", *backend)
	}

	p := core.NewParser(g,
		core.WithBackend(b),
		core.WithPEs(*pes),
		core.WithFilter(!*noFilter),
		core.WithMaxFilterIters(*maxFilter),
	)
	res, err := p.Parse(words)
	if err != nil {
		return err
	}

	if *jsonOut {
		// Emit exactly the schema POST /v1/parse returns, so CLI and
		// service output are diffable.
		key := *grammarName
		if *grammarFile != "" {
			key = "file:" + *grammarFile
		}
		mp := *maxParses
		if mp == 0 {
			mp = -1 // CLI 0 means all; the wire convention is -1
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(server.NewResult(words, key, *backend, res, mp))
	}

	fmt.Fprintf(out, "sentence: %s\n", strings.Join(words, " "))
	fmt.Fprintf(out, "accepted: %v   ambiguous: %v\n", res.Accepted(), res.Ambiguous())
	if *showPEMap {
		sent, err := cdg.Resolve(g, words, nil)
		if err != nil {
			return err
		}
		sp := cdg.NewSpace(g, sent)
		ly := core.NewLayout(sp)
		fmt.Fprintf(out, "\nPE allocation (Figure 11):\n%s", ly.RenderAllocation(sp))
	}
	if *showTrace {
		_, tr, err := trace.Run(g, words, serial.Options{
			Filter:         !*noFilter,
			MaxFilterIters: *maxFilter,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\n%s", tr.String())
	}
	if *showNet {
		fmt.Fprintf(out, "\nfinal network:\n%s", res.Network.Render())
	}
	if *explain != "" {
		pos, r, idx, err := cn.ParseRVSpec(res.Network.Space(), *explain)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\n%s", res.Network.ExplainSupport(pos, r, idx))
	}
	parses := res.Parses(*maxParses)
	fmt.Fprintf(out, "\nprecedence graphs (%d shown):\n", len(parses))
	for i, a := range parses {
		fmt.Fprintf(out, "--- parse %d ---\n%s", i+1, cn.RenderPrecedenceGraph(a))
		if *dot {
			fmt.Fprint(out, cn.RenderDot(a))
		}
	}
	if *dot && res.Ambiguous() {
		fmt.Fprintf(out, "\nnetwork (candidate edges dashed):\n%s", cn.RenderNetworkDot(res.Network))
	}
	if *diagnose > 0 && len(parses) == 0 {
		blockers, already, err := serial.Diagnose(g, words, *diagnose)
		if err != nil {
			return err
		}
		switch {
		case already:
			fmt.Fprintln(out, "\ndiagnose: the sentence parses — nothing to relax")
		case len(blockers) == 0:
			fmt.Fprintf(out, "\ndiagnose: no constraint set of size <= %d unblocks the sentence\n", *diagnose)
		default:
			fmt.Fprintln(out, "\ndiagnose: minimal constraint relaxations that admit the sentence:")
			for _, b := range blockers {
				fmt.Fprintf(out, "  %s\n", b)
			}
		}
	}
	if *stats {
		fmt.Fprintf(out, "\n%s\n", res.Stats())
		if res.ModelTime > 0 {
			fmt.Fprintf(out, "simulated MP-1 wall clock: %.3fs (12.5 MHz, %d PEs, %d layers)\n",
				res.ModelTime.Seconds(), *pes, res.Counters.VirtualLayers)
		}
		fmt.Fprintf(out, "host time: %v\n", res.HostTime)
	}
	return nil
}

func loadGrammar(name, file string) (*cdg.Grammar, error) {
	if file != "" {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return cdg.ParseGrammar(string(src))
	}
	return grammars.ByName(name)
}
