package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/server"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

func TestCLIDemoParse(t *testing.T) {
	out, err := runCLI(t, "the", "program", "runs")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"accepted: true",
		"ambiguous: false",
		"precedence graphs (1 shown)",
		"SUBJ-3",
		"simulated MP-1 wall clock",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIBackends(t *testing.T) {
	for _, backend := range []string{"serial", "pram", "maspar", "mesh", "hostpar"} {
		out, err := runCLI(t, "-backend", backend, "the", "program", "runs")
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if !strings.Contains(out, "accepted: true") {
			t.Errorf("%s: not accepted:\n%s", backend, out)
		}
	}
}

func TestCLIGrammars(t *testing.T) {
	cases := []struct {
		grammar string
		words   []string
		accept  bool
	}{
		{"english", []string{"the", "dog", "walked"}, true},
		{"ww", []string{"a", "b", "a", "b"}, true},
		{"dyck", []string{"(", ")"}, true},
		{"anbn", []string{"a", "b"}, true},
		{"anbn", []string{"b", "a"}, false},
		{"chain", []string{"w", "w", "w"}, true},
	}
	for _, tc := range cases {
		args := append([]string{"-grammar", tc.grammar, "-backend", "serial"}, tc.words...)
		out, err := runCLI(t, args...)
		if err != nil {
			t.Fatalf("%s %v: %v", tc.grammar, tc.words, err)
		}
		want := "accepted: true"
		if !tc.accept {
			// the formal-language grammars stay "accepted" at the
			// network level only when a parse exists; assert on the
			// parse count instead.
			want = "precedence graphs (0 shown)"
		}
		if !strings.Contains(out, want) {
			t.Errorf("%s %v: missing %q:\n%s", tc.grammar, tc.words, want, out)
		}
	}
}

func TestCLIShowNetworkAndPEMap(t *testing.T) {
	out, err := runCLI(t, "-show-network", "-show-pe-map", "the", "program", "runs")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"final network:", "324 PEs total", "governor"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestCLIDiagnose(t *testing.T) {
	out, err := runCLI(t, "-backend", "serial", "-diagnose", "1", "runs", "program")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "diagnose: minimal constraint relaxations") ||
		!strings.Contains(out, "noun-governor") {
		t.Errorf("diagnose output:\n%s", out)
	}
}

func TestCLILint(t *testing.T) {
	out, err := runCLI(t, "-lint", "-backend", "serial", "the", "program", "runs")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "lint: grammar is clean") {
		t.Errorf("lint output:\n%s", out)
	}
}

func TestCLIExplain(t *testing.T) {
	out, err := runCLI(t, "-backend", "serial", "-explain", "2.governor.SUBJ-3", "the", "program", "runs")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "support of SUBJ-3") || !strings.Contains(out, "AND of the ORs = 1") {
		t.Errorf("explain output:\n%s", out)
	}
	if _, err := runCLI(t, "-explain", "garbage", "the", "program", "runs"); err == nil {
		t.Error("bad explain spec should error")
	}
}

func TestCLIGrammarFile(t *testing.T) {
	src := `
(grammar
  (labels A IDLE)
  (categories c)
  (role r A)
  (role aux IDLE)
  (word w c)
  (constraint "r-a" (if (eq (role x) r) (and (eq (lab x) A) (eq (mod x) nil))))
  (constraint "aux" (if (eq (role x) aux) (and (eq (lab x) IDLE) (eq (mod x) nil)))))`
	path := filepath.Join(t.TempDir(), "g.cdg")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "-grammar-file", path, "-backend", "serial", "w", "w")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "accepted: true") {
		t.Errorf("file grammar parse failed:\n%s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                        // no sentence
		{"-grammar", "zzz", "a"},  // unknown grammar
		{"-backend", "warp", "a"}, // unknown backend
		{"xyzzy"},                 // unknown word
		{"-grammar-file", "/nonexistent/g.cdg", "a"},
	} {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

// TestCLIJSONDiffableWithService pins the satellite guarantee: `parsec
// -json` emits the same result schema POST /v1/parse returns, equal
// field for field once the run-dependent timing/batching extras are
// zeroed.
func TestCLIJSONDiffableWithService(t *testing.T) {
	out, err := runCLI(t, "-json", "-backend", "serial", "the", "program", "runs")
	if err != nil {
		t.Fatal(err)
	}
	var cli server.ParseResult
	if err := json.Unmarshal([]byte(out), &cli); err != nil {
		t.Fatalf("CLI -json output is not the wire schema: %v\n%s", err, out)
	}

	s := server.New(server.Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, _ := json.Marshal(server.ParseRequest{
		Grammar: "demo", Backend: "serial",
		Sentence: []string{"the", "program", "runs"},
	})
	resp, err := http.Post(ts.URL+"/v1/parse", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var svc server.ParseResult
	if err := json.NewDecoder(resp.Body).Decode(&svc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	normalize := func(r *server.ParseResult) {
		r.HostTimeUS, r.ModelTimeUS, r.QueueTimeUS, r.BatchSize = 0, 0, 0, 0
	}
	normalize(&cli)
	normalize(&svc)
	if !reflect.DeepEqual(cli, svc) {
		t.Errorf("CLI and service results differ:\ncli: %+v\nsvc: %+v", cli, svc)
	}
	if cli.Counters == nil || cli.Counters.ConstraintChecks == 0 {
		t.Errorf("counters not populated: %+v", cli.Counters)
	}
}

func TestCLINoFilterAndBounds(t *testing.T) {
	out, err := runCLI(t, "-no-filter", "-max-parses", "1", "-backend", "serial", "the", "program", "runs")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "accepted: true") {
		t.Error("no-filter parse failed")
	}
}
