package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestJSONReport runs the real suite over this package and decodes the
// -json report: the document must name every analyzer, parse cleanly,
// and agree with the exit status on the unsuppressed count.
func TestJSONReport(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-json", "."}, &out, &errw)
	if code == 2 {
		t.Fatalf("run errored: %s", errw.String())
	}

	var report jsonReport
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(report.Analyzers) != 8 {
		t.Errorf("report names %d analyzers, want 8: %v", len(report.Analyzers), report.Analyzers)
	}
	unsuppressed := 0
	for _, d := range report.Diagnostics {
		if d.File == "" || d.Line <= 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		if !d.Suppressed {
			unsuppressed++
		}
		if d.Suppressed && d.Justification == "" {
			t.Errorf("suppressed diagnostic without justification: %+v", d)
		}
	}
	if unsuppressed != report.Unsuppressed {
		t.Errorf("unsuppressed = %d but %d diagnostics are unsuppressed", report.Unsuppressed, unsuppressed)
	}
	wantCode := 0
	if report.Unsuppressed > 0 {
		wantCode = 1
	}
	if code != wantCode {
		t.Errorf("exit = %d, want %d for %d unsuppressed findings", code, wantCode, report.Unsuppressed)
	}
}

func TestListAnalyzers(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("run -list = %d: %s", code, errw.String())
	}
	for _, name := range []string{"allocfree", "ctxflow", "detrand", "httpresp", "lockorder", "locksafe", "maporder", "metricflow"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-only", "nope"}, &out, &errw); code != 2 {
		t.Errorf("run -only nope = %d, want 2", code)
	}
}
