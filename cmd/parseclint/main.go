// Command parseclint is the project's static-analysis gate: a
// multichecker running the internal/analysis suite (allocfree,
// ctxflow, detrand, httpresp, lockorder, locksafe, maporder,
// metricflow) over the package patterns given on the command line. It
// is `make lint` and part of `make ci`.
//
// Usage:
//
//	parseclint [-only names] [-list] [-json] [packages...]
//
// With no packages, ./... is checked. Exit status is 1 when any
// diagnostic survives suppression. Findings are suppressed one line at
// a time with
//
//	//lint:allow <analyzer> (justification)
//
// on the offending line or the line above; the justification is
// mandatory.
//
// -json emits the machine-readable report CI archives as an artifact:
// every diagnostic including suppressed ones (with their
// justifications), so a reviewer can audit what the suite found and
// what was waived without re-running it. The exit status still depends
// only on unsuppressed findings.
//
// The suite is stdlib-only (see internal/analysis). If the module ever
// vendors golang.org/x/tools, the same analyzers port to
// go/analysis + unitchecker, at which point `go vet
// -vettool=$(which parseclint) ./...` becomes the driver and this
// main shrinks to a multichecker.Main call.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is one finding in the -json report.
type jsonDiagnostic struct {
	File          string `json:"file"`
	Line          int    `json:"line"`
	Col           int    `json:"col"`
	Analyzer      string `json:"analyzer"`
	Message       string `json:"message"`
	Suppressed    bool   `json:"suppressed"`
	Justification string `json:"justification,omitempty"`
}

// jsonReport is the -json document.
type jsonReport struct {
	Analyzers    []string         `json:"analyzers"`
	Diagnostics  []jsonDiagnostic `json:"diagnostics"`
	Unsuppressed int              `json:"unsuppressed"`
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("parseclint", flag.ContinueOnError)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	asJSON := fs.Bool("json", false, "emit the full diagnostic report (including suppressed findings) as JSON")
	fs.SetOutput(errw)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(errw, "parseclint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(errw, "parseclint: %v\n", err)
		return 2
	}
	// One suite run over every package at once: the whole-program
	// analyzers (lockorder, metricflow, interprocedural ctxflow) need
	// the cross-package view.
	diags, err := analysis.RunSuite(".", pkgs, analyzers, false)
	if err != nil {
		fmt.Fprintf(errw, "parseclint: %v\n", err)
		return 2
	}

	cwd, _ := os.Getwd()
	relfile := func(name string) string {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				return rel
			}
		}
		return name
	}

	unsuppressed := 0
	for _, d := range diags {
		if !d.Suppressed {
			unsuppressed++
		}
	}

	if *asJSON {
		report := jsonReport{Unsuppressed: unsuppressed, Diagnostics: []jsonDiagnostic{}}
		for _, a := range analyzers {
			report.Analyzers = append(report.Analyzers, a.Name)
		}
		for _, d := range diags {
			report.Diagnostics = append(report.Diagnostics, jsonDiagnostic{
				File:          relfile(d.Pos.Filename),
				Line:          d.Pos.Line,
				Col:           d.Pos.Column,
				Analyzer:      d.Analyzer,
				Message:       d.Message,
				Suppressed:    d.Suppressed,
				Justification: d.Justification,
			})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(errw, "parseclint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			if d.Suppressed {
				continue
			}
			fmt.Fprintf(out, "%s:%d:%d: %s: %s\n", relfile(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if unsuppressed > 0 {
		return 1
	}
	return 0
}
