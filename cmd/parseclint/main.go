// Command parseclint is the project's static-analysis gate: a
// multichecker running the internal/analysis suite (ctxflow, detrand,
// locksafe, maporder) over the package patterns given on the command
// line. It is `make lint` and part of `make ci`.
//
// Usage:
//
//	parseclint [-only names] [-list] [packages...]
//
// With no packages, ./... is checked. Exit status is 1 when any
// diagnostic survives suppression. Findings are suppressed one line at
// a time with
//
//	//lint:allow <analyzer> (justification)
//
// on the offending line or the line above; the justification is
// mandatory.
//
// The suite is stdlib-only (see internal/analysis). If the module ever
// vendors golang.org/x/tools, the same analyzers port to
// go/analysis + unitchecker, at which point `go vet
// -vettool=$(which parseclint) ./...` becomes the driver and this
// main shrinks to a multichecker.Main call.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw *os.File) int {
	fs := flag.NewFlagSet("parseclint", flag.ContinueOnError)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.SetOutput(errw)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(errw, "parseclint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(errw, "parseclint: %v\n", err)
		return 2
	}
	bad := false
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(pkg, analyzers, false)
		if err != nil {
			fmt.Fprintf(errw, "parseclint: %v\n", err)
			return 2
		}
		for _, d := range diags {
			bad = true
			fmt.Fprintln(out, d)
		}
	}
	if bad {
		return 1
	}
	return 0
}
