// Command experiments regenerates the paper's tables and figures as
// plain-text reports (see EXPERIMENTS.md for the paper-vs-measured
// record).
//
// Usage:
//
//	experiments              # run everything
//	experiments -e E2        # just Figure 8
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		which = flag.String("e", "all", "experiment id (E1..E6) or 'all'")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	if strings.EqualFold(*which, "all") {
		for _, e := range experiments.All() {
			fmt.Println(e.Run())
		}
		return
	}
	e, ok := experiments.ByID(*which)
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown id %q; have %v\n", *which, experiments.IDs())
		os.Exit(1)
	}
	fmt.Println(e.Run())
}
