// Command benchjson converts `go test -bench` text output read on
// stdin into a JSON benchmark report on stdout (or -o file). It keeps
// the metrics the scan/router optimization work tracks: ns/op, B/op,
// allocs/op, the simulator's custom cycles/op metric, the serving
// path's sents/s throughput and p99-ns/op tail-latency metrics, and
// the end-to-end parse benchmark's eval/scan/router stage attribution.
//
// Usage:
//
//	go test -bench . -benchmem ./internal/maspar/ | benchjson -o BENCH_scan.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line. Zero-valued metrics the line did not
// report (e.g. cycles/op on a benchmark without ReportMetric) are
// omitted from the JSON.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp float64 `json:"bytes_per_op"`
	AllocsLine bool    `json:"-"`
	AllocsPer  float64 `json:"allocs_per_op"`
	CyclesPer  float64 `json:"cycles_per_op,omitempty"`
	SentsPer   float64 `json:"sents_per_sec,omitempty"`
	EvalNsPer  float64 `json:"eval_ns_per_op,omitempty"`
	ScanNsPer  float64 `json:"scan_ns_per_op,omitempty"`
	RouterNs   float64 `json:"router_ns_per_op,omitempty"`
	P99Ns      float64 `json:"p99_ns_per_op,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			// Multi-package runs keep the last pkg header per result
			// block; the per-result names stay unambiguous because
			// benchmark names are distinct across our packages.
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		res, ok := parseLine(line)
		if ok {
			rep.Results = append(rep.Results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("no benchmark result lines on stdin")
	}
	return rep, nil
}

// parseLine decodes one result line: name, iteration count, then
// (value, unit) pairs.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: trimProcSuffix(fields[0]), Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPer = v
		case "cycles/op":
			res.CyclesPer = v
		case "sents/s":
			res.SentsPer = v
		case "eval-ns/op":
			res.EvalNsPer = v
		case "scan-ns/op":
			res.ScanNsPer = v
		case "router-ns/op":
			res.RouterNs = v
		case "p99-ns/op":
			res.P99Ns = v
		}
	}
	return res, true
}

// trimProcSuffix drops the -GOMAXPROCS suffix go test appends
// (BenchmarkFoo/v=1024-8 → BenchmarkFoo/v=1024) so reports diff
// cleanly across machines.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
