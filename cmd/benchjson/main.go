// Command benchjson converts `go test -bench` text output read on
// stdin into a JSON benchmark report on stdout (or -o file). It keeps
// the metrics the scan/router optimization work tracks: ns/op, B/op,
// allocs/op, the simulator's custom cycles/op metric, the serving
// path's sents/s throughput and p50/p99-ns/op latency metrics, and
// the end-to-end parse benchmark's eval/scan/router stage attribution.
// The schema lives in internal/benchjson, shared with the fleet
// benchmark orchestrator (cmd/parsecbench) so BENCH_scan.json and
// BENCH_cluster.json stay one format.
//
// Usage:
//
//	go test -bench . -benchmem ./internal/maspar/ | benchjson -o BENCH_scan.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/benchjson"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	rep, err := benchjson.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
