package main

import (
	"strings"
	"testing"

	"repro/internal/benchjson"
)

// The parser itself is tested in internal/benchjson; this pins the
// command's dependency on it (a build break here means the extraction
// regressed).
func TestCommandUsesSharedParser(t *testing.T) {
	rep, err := benchjson.Parse(strings.NewReader(
		"BenchmarkX-8 10 5.0 ns/op 1 B/op 1 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Name != "BenchmarkX" {
		t.Fatalf("unexpected report: %+v", rep)
	}
}
