package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/maspar
cpu: whatever
BenchmarkSegScanOr/v=16384-8         	 2751582	       433.5 ns/op	     17153 cycles/op	       0 B/op	       0 allocs/op
BenchmarkRouterFetch/v=65536-8       	  106156	     11245 ns/op	    393223 cycles/op	       0 B/op	       0 allocs/op
BenchmarkAll-8                       	    9086	    131509 ns/op	         1.000 cycles/op	       0 B/op	       0 allocs/op
BenchmarkGangThroughput/batch=32-8   	       8	 290593770 ns/op	       110.1 sents/s	19645530 B/op	   48995 allocs/op
PASS
ok  	repro/internal/maspar	9.499s
`

func TestParseBenchOutput(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "repro/internal/maspar" {
		t.Errorf("header mismatch: %+v", rep)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(rep.Results))
	}
	r := rep.Results[0]
	if r.Name != "BenchmarkSegScanOr/v=16384" {
		t.Errorf("GOMAXPROCS suffix not trimmed: %q", r.Name)
	}
	if r.Iterations != 2751582 || r.NsPerOp != 433.5 || r.CyclesPer != 17153 || r.AllocsPer != 0 {
		t.Errorf("metrics mismatch: %+v", r)
	}
	if rep.Results[2].Name != "BenchmarkAll" {
		t.Errorf("plain name mishandled: %q", rep.Results[2].Name)
	}
	if g := rep.Results[3]; g.SentsPer != 110.1 || g.CyclesPer != 0 {
		t.Errorf("sents/s metric mishandled: %+v", g)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("expected an error for input with no benchmark lines")
	}
}
