// Package parsec is a Go reproduction of PARSEC — "Log Time Parsing on
// the MasPar MP-1" (Helzerman & Harper, ICPP 1992): Constraint
// Dependency Grammar (CDG) parsing, parallelized.
//
// The package is a thin facade over the implementation packages:
//
//	internal/cdg     — the CDG formalism and constraint language
//	internal/cn      — constraint networks (domains, arcs, propagation)
//	internal/serial  — the sequential O(k·n⁴) reference parser
//	internal/pram    — a CRCW P-RAM simulator and the O(k) algorithm
//	internal/maspar  — a MasPar MP-1 SIMD simulator (router, scans)
//	internal/core    — PARSEC: the parallel parser on those machines
//	internal/cfg     — CFG baselines (CKY, Earley, mesh automaton)
//	internal/grammars— ready-made grammars (the paper's demo, English,
//	                   the copy language w·w, Dyck, aⁿbⁿ, …)
//
// Quick start:
//
//	p := parsec.NewParser(parsec.PaperDemo(), parsec.WithBackend(parsec.MasPar))
//	res, err := p.Parse([]string{"the", "program", "runs"})
//	if err != nil { … }
//	fmt.Println(res.Accepted(), res.ModelTime)
//	for _, a := range res.Parses(0) { fmt.Print(a) }
//
// Parsing under a deadline — the context is checked between constraint
// propagations and consistency rounds, so cancellation stops a long
// parse mid-algorithm:
//
//	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
//	defer cancel()
//	res, err := p.ParseContext(ctx, words) // err == context.DeadlineExceeded on expiry
//
// The same parsers are served over HTTP by cmd/parsecd (internal/server):
// POST /v1/parse with request batching, a compiled-grammar cache, and
// Prometheus metrics; cmd/parsecload generates load against it.
package parsec

import (
	"repro/internal/cdg"
	"repro/internal/cn"
	"repro/internal/core"
	"repro/internal/grammars"
	"repro/internal/maspar"
)

// Grammar is a validated CDG grammar ⟨Σ, L, R, T, C⟩.
type Grammar = cdg.Grammar

// GrammarBuilder assembles a Grammar programmatically.
type GrammarBuilder = cdg.Builder

// Sentence is a tokenized, category-resolved input.
type Sentence = cdg.Sentence

// Parser parses sentences of one grammar on one machine model.
type Parser = core.Parser

// Result is the outcome of a parse.
type Result = core.Result

// Assignment is one extracted parse (a precedence graph).
type Assignment = cn.Assignment

// Network is a constraint network (inspectable parse state).
type Network = cn.Network

// Option configures a Parser.
type Option = core.Option

// Backend selects the machine model.
type Backend = core.Backend

// Machine models.
const (
	Serial = core.Serial
	PRAM   = core.PRAM
	MasPar = core.MasPar
	Mesh   = core.Mesh
	// HostParallel fans the algorithm out over the host's cores.
	HostParallel = core.HostParallel
)

// PhysicalPEs is the paper's MP-1 configuration (16,384 PEs).
const PhysicalPEs = maspar.PhysicalPEs

// NewGrammarBuilder starts an empty grammar.
func NewGrammarBuilder() *GrammarBuilder { return cdg.NewBuilder() }

// ParseGrammar loads a grammar from its textual s-expression form.
func ParseGrammar(src string) (*Grammar, error) { return cdg.ParseGrammar(src) }

// NewParser builds a parser for g; the default backend is the MasPar
// with the paper's 16K-PE configuration.
func NewParser(g *Grammar, opts ...Option) *Parser { return core.NewParser(g, opts...) }

// WithBackend selects the machine model.
func WithBackend(b Backend) Option { return core.WithBackend(b) }

// WithPEs sets the simulated physical PE count.
func WithPEs(n int) Option { return core.WithPEs(n) }

// WithFilter toggles the filtering phase.
func WithFilter(on bool) Option { return core.WithFilter(on) }

// WithMaxFilterIters bounds filtering rounds (<= 0: to fixpoint).
func WithMaxFilterIters(n int) Option { return core.WithMaxFilterIters(n) }

// WithWorkers caps the HostParallel backend's goroutine pool
// (<= 0: GOMAXPROCS).
func WithWorkers(n int) Option { return core.WithWorkers(n) }

// PaperDemo returns the paper's §1 grammar for "The program runs".
func PaperDemo() *Grammar { return grammars.PaperDemo() }

// English returns the larger English fragment with PP-attachment
// ambiguity.
func English() *Grammar { return grammars.English() }

// CopyLanguage returns the grammar of { w·w } — beyond context-free.
func CopyLanguage() *Grammar { return grammars.CopyLanguage() }

// Dyck returns the balanced-brackets grammar.
func Dyck() *Grammar { return grammars.Dyck() }

// AnBn returns the { aⁿbⁿ } grammar.
func AnBn() *Grammar { return grammars.AnBn() }

// CrossSerial returns the { aⁿbᵐcⁿdᵐ } cross-serial-dependency grammar
// — mildly context-sensitive, beyond CFG.
func CrossSerial() *Grammar { return grammars.CrossSerial() }

// RenderPrecedenceGraph pretty-prints one parse in the style of the
// paper's Figure 7.
func RenderPrecedenceGraph(a *Assignment) string { return cn.RenderPrecedenceGraph(a) }
