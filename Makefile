GO ?= go

.PHONY: build test race vet lint ci serve load bench bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs the project analyzers (determinism, map ordering, context
# flow, lock discipline) over the whole module. parseclint is a
# multichecker built on the stdlib; if golang.org/x/tools is ever
# vendored, the same analyzers can run as `go vet -vettool` — see
# cmd/parseclint.
lint:
	$(GO) run ./cmd/parseclint ./...

race:
	$(GO) test -race ./...

# ci is the gate: static checks plus the full suite under the race
# detector (the server/coalescer tests are written to be hammered).
ci: vet lint race

# serve runs the parse service on the default port.
serve:
	$(GO) run ./cmd/parsecd

# load drives a locally running parsecd with the default mix.
load:
	$(GO) run ./cmd/parsecload -c 16 -n 400

# bench runs the simulator, network, and serving-path benchmarks with
# allocation accounting and writes the machine-readable report the perf
# work tracks (ns/op, B/op, allocs/op, simulated cycles/op, sents/s).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/maspar/ ./internal/cn/ ./internal/server/ | $(GO) run ./cmd/benchjson -o BENCH_scan.json
	@echo wrote BENCH_scan.json

# bench-smoke is the CI-sized variant: one short iteration per
# benchmark, just enough to prove the harness and the JSON pipeline
# stay healthy.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./internal/maspar/ ./internal/cn/ ./internal/server/ | $(GO) run ./cmd/benchjson -o BENCH_scan.json
	@echo wrote BENCH_scan.json
