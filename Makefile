GO ?= go

.PHONY: build test race vet lint ci serve load

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs the project analyzers (determinism, map ordering, context
# flow, lock discipline) over the whole module. parseclint is a
# multichecker built on the stdlib; if golang.org/x/tools is ever
# vendored, the same analyzers can run as `go vet -vettool` — see
# cmd/parseclint.
lint:
	$(GO) run ./cmd/parseclint ./...

race:
	$(GO) test -race ./...

# ci is the gate: static checks plus the full suite under the race
# detector (the server/coalescer tests are written to be hammered).
ci: vet lint race

# serve runs the parse service on the default port.
serve:
	$(GO) run ./cmd/parsecd

# load drives a locally running parsecd with the default mix.
load:
	$(GO) run ./cmd/parsecload -c 16 -n 400
