GO ?= go

.PHONY: build test race vet ci serve load

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# ci is the gate: static checks plus the full suite under the race
# detector (the server/coalescer tests are written to be hammered).
ci: vet race

# serve runs the parse service on the default port.
serve:
	$(GO) run ./cmd/parsecd

# load drives a locally running parsecd with the default mix.
load:
	$(GO) run ./cmd/parsecload -c 16 -n 400
