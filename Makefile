GO ?= go

.PHONY: build test race vet lint lint-json ci serve load bench bench-smoke fuzz-smoke cluster-smoke bench-cluster-bin bench-cluster bench-cluster-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs the project analyzers (determinism, map ordering, context
# flow, lock discipline) over the whole module. parseclint is a
# multichecker built on the stdlib; if golang.org/x/tools is ever
# vendored, the same analyzers can run as `go vet -vettool` — see
# cmd/parseclint.
lint:
	$(GO) run ./cmd/parseclint ./...

# lint-json writes the machine-readable report (every finding,
# suppressed ones included, with their justifications) that CI archives
# as an artifact. The exit status still gates on unsuppressed findings
# only.
lint-json:
	$(GO) run ./cmd/parseclint -json ./... > lint-report.json || (cat lint-report.json; exit 1)
	@echo wrote lint-report.json

race:
	$(GO) test -race ./...

# ci is the gate: static checks, the full suite under the race
# detector (the server/coalescer/router tests are written to be
# hammered), and a bounded fuzz pass over the request-decoding and
# cache-key canonicalization surfaces.
ci: vet lint race fuzz-smoke

# fuzz-smoke runs each native fuzz target for FUZZTIME on top of its
# checked-in seed corpus (testdata/fuzz/). 30s per target is the CI
# budget; set FUZZTIME=5s for a quick local pass or point -fuzztime
# at something much larger for a real soak. Targets are pkg:Name pairs
# so surfaces outside the server package (the VM-vs-AST differential
# target in internal/cdg) ride the same harness.
FUZZTIME ?= 30s
FUZZ_TARGETS ?= ./internal/server/:FuzzParseRequestDecode \
	./internal/server/:FuzzCacheKey \
	./internal/server/:FuzzLatticeRequestDecode \
	./internal/cdg/:FuzzCompiledEvalMatchesAST \
	./internal/benchfleet/:FuzzScenarioDecode
fuzz-smoke:
	@for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; name=$${t##*:}; \
		echo "== fuzz $$name ($(FUZZTIME))"; \
		$(GO) test -run '^$$' -fuzz "^$$name$$" -fuzztime $(FUZZTIME) $$pkg || exit 1; \
	done

# cluster-smoke boots a 3-shard in-process cluster (real server.New
# instances behind the router, no child processes) and drives a mixed
# parse/batch/metrics workload through it — the quickest end-to-end
# check that the sharded serving path still holds together.
cluster-smoke:
	$(GO) test -run TestClusterSmoke -count=1 -v ./internal/router/clustertest/

# serve runs the parse service on the default port.
serve:
	$(GO) run ./cmd/parsecd

# load drives a locally running parsecd with the default mix.
load:
	$(GO) run ./cmd/parsecload -c 16 -n 400

# bench runs the simulator, network, constraint-eval, end-to-end,
# serving-path, and hedged-fleet benchmarks with allocation accounting
# and writes the machine-readable report the perf work tracks (ns/op,
# B/op, allocs/op, simulated cycles/op, sents/s, p99-ns/op, and the
# end-to-end parse's eval/scan/router stage attribution).
BENCH_PKGS = ./internal/maspar/ ./internal/cn/ ./internal/cdg/ ./internal/core/ ./internal/latticeserve/ ./internal/server/ ./internal/router/clustertest/
bench:
	$(GO) test -run '^$$' -bench . -benchmem $(BENCH_PKGS) | $(GO) run ./cmd/benchjson -o BENCH_scan.json
	@echo wrote BENCH_scan.json

# bench-smoke is the CI-sized variant: one short iteration per
# benchmark (BenchmarkEndToEndParse and BenchmarkConstraintEval
# included), just enough to prove the harness, the attribution
# plumbing, and the JSON pipeline stay healthy.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem $(BENCH_PKGS) | $(GO) run ./cmd/benchjson -o BENCH_scan.json
	@echo wrote BENCH_scan.json

# Fleet benchmarking: cmd/parsecbench boots an N-shard parsecd fleet
# plus parsecrouter as real local processes, drives a declarative
# scenario (scenarios/*.json) with its fault schedule (kill -9 a shard
# mid-run, delay injection), scrapes per-shard and router /metrics into
# a columnar sample store, and writes BENCH_cluster.json in the same
# benchjson schema as BENCH_scan.json. Query it afterwards:
#   .benchbin/parsecbench query -in BENCH_cluster.json -phase kill -p 0.99
BENCHBIN := .benchbin
bench-cluster-bin:
	@mkdir -p $(BENCHBIN)
	$(GO) build -o $(BENCHBIN)/ ./cmd/parsecd ./cmd/parsecrouter ./cmd/parsecload ./cmd/parsecbench

# bench-cluster runs the full 3-shard zipf + kill + lattice scenario.
bench-cluster: bench-cluster-bin
	$(BENCHBIN)/parsecbench run -scenario scenarios/zipf-kill.json -mode proc -bin $(BENCHBIN) -o BENCH_cluster.json
	@echo wrote BENCH_cluster.json

# bench-cluster-smoke is the CI-sized variant: a real 2-shard fleet +
# router as child processes, a kill-phase scenario (~5s including probe
# waits), and the test asserts the artifact validates with non-empty
# per-shard p99/hit-rate series and an observed ejection.
bench-cluster-smoke: bench-cluster-bin
	PARSECBENCH_PROC=1 PARSECBENCH_BIN=$(abspath $(BENCHBIN)) PARSECBENCH_OUT=$(abspath BENCH_cluster.json) \
		$(GO) test -run TestProcFleetSmoke -count=1 -v ./cmd/parsecbench/
